// Flat, open-addressing cuckoo flow table sized for 10M+ concurrent flows.
//
// Every host-side per-flow map in the repro used to sit on
// std::map<StateKey, StateValue>: one heap node per entry and an O(log n)
// pointer chase per lookup, which caps tables at paper scale and wrecks the
// zero-alloc engine story the moment flows churn. This table is the
// replacement: a 2-choice bucketed cuckoo hash with *inline* key/value
// storage (structure-of-arrays, no per-entry heap nodes), so a lookup is
// one hash, two bucket probes of four slots each, and a word compare — all
// in at most three cache lines.
//
// Three properties the runtime depends on:
//
//  * Bounded kick chains. Inserts displace at most Config::max_kick_chain
//    entries; when the random walk fails, the leftover entry parks in a
//    small stash (checked by every lookup) instead of looping, and a grow
//    is scheduled. No insert ever takes unbounded time.
//
//  * Incremental (non-stop-the-world) resize. A grow allocates the new
//    bucket array and then migrates at most migrate_buckets_per_op buckets
//    per mutating operation; lookups probe both generations while the drain
//    is in flight. No packet ever eats a full rehash — the worst-case
//    per-op pause is O(migrate_buckets_per_op), gated by bench/flowscale.
//
//  * Batched aging. SweepExpired walks the slot array from a caller-held
//    cursor, testing and erasing expired entries in place, at most
//    max_slots per call — CollectIdleFlows amortizes expiry across calls
//    instead of an O(n) stop-the-world scan.
//
// Single-writer, like the per-shard state it backs. Deterministic for a
// given operation sequence (the victim rotation is a plain counter, not an
// RNG), so equivalence snapshots stay reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "telemetry/metrics.h"
#include "util/hash.h"

namespace gallium::telemetry {
class FlightRecorder;
}  // namespace gallium::telemetry

namespace gallium::state {

class FlowTable {
 public:
  static constexpr int kSlotsPerBucket = 4;

  struct Config {
    size_t key_words = 1;
    size_t value_words = 1;
    // Entries the table should hold before its first grow. Rounded up to a
    // power-of-two bucket count at max_load_factor.
    uint64_t initial_capacity = 256;
    double max_load_factor = 0.85;
    // Buckets migrated from the draining generation per mutating op.
    int migrate_buckets_per_op = 8;
    // Cuckoo random-walk bound before the carried entry goes to the stash.
    int max_kick_chain = 128;
    uint64_t hash_seed = 0x9e3779b97f4a7c15ull;
  };

  struct Stats {
    uint64_t resizes = 0;
    uint64_t migrated_buckets = 0;
    uint64_t kicks = 0;            // total displacements
    uint64_t max_kick_chain = 0;   // longest single walk
    uint64_t stash_spills = 0;     // kick walks that ended in the stash
    uint64_t stash_peak = 0;
    uint64_t forced_migration_bursts = 0;  // grow wanted while still draining
  };

  explicit FlowTable(Config config);

  size_t key_words() const { return key_words_; }
  size_t value_words() const { return value_words_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool resizing() const { return old_.num_buckets != 0; }
  // Slots across both live generations (capacity before the next grow is
  // max_load_factor * the current generation's share).
  uint64_t capacity_slots() const {
    return (cur_.num_buckets + old_.num_buckets) * kSlotsPerBucket;
  }
  const Stats& stats() const { return stats_; }

  // Point ops. Keys/values are raw word spans of key_words()/value_words().
  // Lookup copies the value into value_out (may be null to test presence
  // only) and never allocates; it also never migrates (it is const), so
  // read-only phases leave an in-flight drain parked — harmless, lookups
  // probe both generations.
  bool Lookup(const uint64_t* key, uint64_t* value_out) const;
  bool Contains(const uint64_t* key) const { return Lookup(key, nullptr); }
  // Insert-or-overwrite. Allocates only when a grow starts (amortized).
  void Upsert(const uint64_t* key, const uint64_t* value);
  bool Erase(const uint64_t* key);
  void Clear();

  // Slots this key's lookup examines right now (occupied-slot compares +
  // empty probes, both generations + stash). Diagnostic for the p99 probe
  // metric in bench/flowscale.
  int ProbeSlots(const uint64_t* key) const;

  // --- Batched aging ---------------------------------------------------------
  // The cursor is generation-stamped: a resize invalidates it (slot indices
  // move), and the sweep restarts from 0 — aging is eventual, not exact, so
  // a restarted pass only delays expiry by one cycle.
  struct SweepCursor {
    uint64_t generation = ~0ull;
    uint64_t next_slot = 0;
  };

  // Visits up to max_slots slots starting at *cursor; for each occupied
  // slot, pred(key, value) == true expires the entry: on_expire(key, value)
  // runs first, then the slot is erased in place. At the end of the slot
  // space the (tiny) stash is swept too and the cursor wraps to 0. Returns
  // the number of entries expired this call.
  template <typename Pred, typename OnExpire>
  uint64_t SweepExpired(SweepCursor* cursor, uint64_t max_slots, Pred&& pred,
                        OnExpire&& on_expire);

  // One full pass over every entry (both generations + stash), expiring all
  // entries pred selects. The stop-the-world convenience used by callers
  // that kept the legacy CollectIdleFlows semantics.
  template <typename Pred, typename OnExpire>
  uint64_t SweepAllExpired(Pred&& pred, OnExpire&& on_expire);

  // Unordered visit of every live entry: fn(key, value).
  template <typename Fn>
  void ForEach(Fn&& fn) const;

  // --- Telemetry -------------------------------------------------------------
  // Attaches registry instruments (kick-chain / resize-pause / probe-length /
  // sweep histograms, sweep + stash counters, occupancy gauges — all under
  // `labels`) and a flight-recorder lane for resize/stash/sweep transition
  // events. Either pointer may be null. Call once at setup; the hot path
  // only ever touches the cached instrument pointers, so an unattached
  // table costs a handful of null checks on the cold branches.
  void AttachTelemetry(telemetry::MetricsRegistry* registry,
                       const telemetry::LabelSet& labels,
                       telemetry::FlightRecorder* recorder, uint16_t lane);

  // Scrape-point refresh: occupancy/stash/resize gauges plus a bounded
  // probe-length sample (up to `probe_samples` resident entries). Never on
  // the packet path — walks slots, O(probe_samples) probes.
  void PublishMetrics(int probe_samples = 64);

 private:
  // One open-addressing generation: power-of-two buckets of 4 slots, all
  // storage flat. tag 0 = empty; otherwise (hash >> 56) | 1. Only the
  // 1-byte tag array is eagerly zeroed on allocation — hashes/keys/values
  // are default-initialized (valid iff the tag is set), so growing a 10M
  // table costs a ~1B/slot memset plus page mapping, not a full zero-fill
  // of the key/value storage.
  struct Gen {
    uint64_t num_buckets = 0;
    std::vector<uint8_t> tags;
    std::unique_ptr<uint64_t[]> hashes;
    std::unique_ptr<uint64_t[]> keys;    // slot * key_words
    std::unique_ptr<uint64_t[]> values;  // slot * value_words
    uint64_t slots() const { return num_buckets * kSlotsPerBucket; }
    void Reset() {
      num_buckets = 0;
      tags.clear();
      tags.shrink_to_fit();
      hashes.reset();
      keys.reset();
      values.reset();
    }
  };

  uint64_t Hash(const uint64_t* key) const {
    return HashWords(key, key_words_, hash_seed_);
  }
  static uint8_t TagOf(uint64_t h) {
    return static_cast<uint8_t>((h >> 56) | 1);
  }
  static uint64_t BucketA(uint64_t h, uint64_t num_buckets) {
    return h & (num_buckets - 1);
  }
  static uint64_t BucketB(uint64_t h, uint64_t num_buckets) {
    return HashMix64(h) & (num_buckets - 1);
  }
  // The other candidate bucket of an entry with hash h currently in
  // `bucket`. Degenerate when both candidates coincide (alt == bucket).
  static uint64_t AltBucket(uint64_t h, uint64_t bucket, uint64_t num_buckets) {
    const uint64_t a = BucketA(h, num_buckets);
    const uint64_t b = BucketB(h, num_buckets);
    return bucket == a ? b : a;
  }

  const uint64_t* KeyAt(const Gen& g, uint64_t slot) const {
    return g.keys.get() + slot * key_words_;
  }
  uint64_t* KeyAt(Gen& g, uint64_t slot) {
    return g.keys.get() + slot * key_words_;
  }
  const uint64_t* ValueAt(const Gen& g, uint64_t slot) const {
    return g.values.get() + slot * value_words_;
  }
  uint64_t* ValueAt(Gen& g, uint64_t slot) {
    return g.values.get() + slot * value_words_;
  }
  bool KeyEquals(const Gen& g, uint64_t slot, const uint64_t* key) const {
    return key_words_ == 0 ||
           std::memcmp(KeyAt(g, slot), key, key_words_ * sizeof(uint64_t)) == 0;
  }

  // Slot of `key` in `g`, or ~0ull.
  uint64_t FindInGen(const Gen& g, uint64_t h, const uint64_t* key) const;
  // Places (h, key, value) into `g`, kicking as needed. On failure the
  // final displaced entry is left in the carry_* scratch and false returns;
  // the caller must stash it (the walk already mutated the table).
  bool InsertIntoGen(Gen* g, uint64_t h, const uint64_t* key,
                     const uint64_t* value);
  void WriteSlot(Gen* g, uint64_t slot, uint64_t h, const uint64_t* key,
                 const uint64_t* value);

  void AllocateGen(Gen* g, uint64_t num_buckets);
  void MaybeGrow();
  void StartResize(uint64_t min_entries);
  void FinishResize();
  // Migrates up to `buckets` buckets of the draining generation.
  void MigrateSome(int buckets);
  void StashCarry();
  void TryDrainStash();

  int FindStash(uint64_t h, const uint64_t* key) const;
  void EraseStash(size_t idx);

  size_t key_words_;
  size_t value_words_;
  double max_load_factor_;
  int migrate_buckets_per_op_;
  int max_kick_chain_;
  uint64_t hash_seed_;

  Gen cur_;
  Gen old_;                    // draining generation; num_buckets 0 = none
  uint64_t migrate_pos_ = 0;   // next old_ bucket to migrate
  // Bumped by every StartResize/FinishResize — invalidates sweep cursors.
  uint64_t generation_ = 0;

  size_t size_ = 0;
  uint32_t victim_rr_ = 0;  // deterministic kick-victim rotation

  // Overflow stash: entries whose kick walk exceeded the bound. Checked by
  // every lookup; drained back into the table as migration frees space.
  std::vector<uint64_t> stash_hashes_;
  std::vector<uint64_t> stash_keys_;    // idx * key_words
  std::vector<uint64_t> stash_values_;  // idx * value_words

  // Kick-walk carry (preallocated; the hot path never allocates).
  uint64_t carry_hash_ = 0;
  std::vector<uint64_t> carry_key_;
  std::vector<uint64_t> carry_value_;

  Stats stats_;

  // Telemetry (all null until AttachTelemetry; see its comment).
  void RecordSweep(uint64_t visited, uint64_t expired);
  telemetry::FlightRecorder* recorder_ = nullptr;
  uint16_t flight_lane_ = 0;
  telemetry::Histogram* kick_chain_hist_ = nullptr;
  telemetry::Histogram* resize_pause_hist_ = nullptr;
  telemetry::Histogram* probe_len_hist_ = nullptr;
  telemetry::Histogram* sweep_scan_hist_ = nullptr;
  telemetry::Counter* sweep_batches_ = nullptr;
  telemetry::Counter* sweep_expired_ = nullptr;
  telemetry::Counter* stash_spill_counter_ = nullptr;
  telemetry::Gauge* size_gauge_ = nullptr;
  telemetry::Gauge* capacity_gauge_ = nullptr;
  telemetry::Gauge* occupancy_gauge_ = nullptr;
  telemetry::Gauge* stash_gauge_ = nullptr;
  telemetry::Gauge* resizes_gauge_ = nullptr;
};

// --- Template bodies ----------------------------------------------------------

template <typename Pred, typename OnExpire>
uint64_t FlowTable::SweepExpired(SweepCursor* cursor, uint64_t max_slots,
                                 Pred&& pred, OnExpire&& on_expire) {
  if (cursor->generation != generation_) {
    cursor->generation = generation_;
    cursor->next_slot = 0;
  }
  // The sweep's index space is the draining generation's slots followed by
  // the current generation's.
  const uint64_t old_slots = old_.slots();
  const uint64_t total = old_slots + cur_.slots();
  uint64_t expired = 0;
  uint64_t visited = 0;
  uint64_t pos = cursor->next_slot;
  while (visited < max_slots && pos < total) {
    Gen& g = pos < old_slots ? old_ : cur_;
    const uint64_t slot = pos < old_slots ? pos : pos - old_slots;
    if (g.tags[slot] != 0 &&
        pred(KeyAt(g, slot), ValueAt(g, slot))) {
      on_expire(KeyAt(g, slot), ValueAt(g, slot));
      g.tags[slot] = 0;
      --size_;
      ++expired;
    }
    ++visited;
    ++pos;
  }
  if (pos >= total) {
    // End of the slot space: sweep the stash (bounded and tiny) and wrap.
    for (size_t i = stash_hashes_.size(); i-- > 0;) {
      const uint64_t* key = stash_keys_.data() + i * key_words_;
      uint64_t* value = stash_values_.data() + i * value_words_;
      if (pred(key, value)) {
        on_expire(key, value);
        EraseStash(i);
        --size_;
        ++expired;
      }
    }
    pos = 0;
  }
  cursor->next_slot = pos;
  RecordSweep(visited, expired);
  return expired;
}

template <typename Pred, typename OnExpire>
uint64_t FlowTable::SweepAllExpired(Pred&& pred, OnExpire&& on_expire) {
  SweepCursor cursor;
  cursor.generation = generation_;
  cursor.next_slot = 0;
  const uint64_t total = old_.slots() + cur_.slots();
  return SweepExpired(&cursor, total == 0 ? 1 : total, pred, on_expire);
}

template <typename Fn>
void FlowTable::ForEach(Fn&& fn) const {
  for (const Gen* g : {&old_, &cur_}) {
    const uint64_t slots = g->slots();
    for (uint64_t slot = 0; slot < slots; ++slot) {
      if (g->tags[slot] != 0) fn(KeyAt(*g, slot), ValueAt(*g, slot));
    }
  }
  for (size_t i = 0; i < stash_hashes_.size(); ++i) {
    fn(stash_keys_.data() + i * key_words_,
       stash_values_.data() + i * value_words_);
  }
}

}  // namespace gallium::state
