#include "state/flow_table.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "telemetry/flight_recorder.h"

namespace gallium::state {

namespace {
uint64_t NextPow2(uint64_t x) {
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

FlowTable::FlowTable(Config config)
    : key_words_(config.key_words),
      value_words_(config.value_words),
      max_load_factor_(config.max_load_factor),
      migrate_buckets_per_op_(std::max(1, config.migrate_buckets_per_op)),
      max_kick_chain_(std::max(1, config.max_kick_chain)),
      hash_seed_(config.hash_seed) {
  const uint64_t want_entries = std::max<uint64_t>(1, config.initial_capacity);
  const uint64_t want_buckets = NextPow2(
      (static_cast<uint64_t>(static_cast<double>(want_entries) /
                             max_load_factor_) +
       kSlotsPerBucket - 1) /
      kSlotsPerBucket);
  AllocateGen(&cur_, want_buckets);
  carry_key_.resize(key_words_);
  carry_value_.resize(value_words_);
}

void FlowTable::AllocateGen(Gen* g, uint64_t num_buckets) {
  g->num_buckets = num_buckets;
  const uint64_t slots = g->slots();
  g->tags.assign(slots, 0);
  // Default-initialized on purpose: a slot's hash/key/value words are only
  // read when its tag is set, and WriteSlot fills them first.
  g->hashes.reset(new uint64_t[slots]);
  g->keys.reset(new uint64_t[slots * key_words_]);
  g->values.reset(new uint64_t[slots * value_words_]);
}

uint64_t FlowTable::FindInGen(const Gen& g, uint64_t h,
                              const uint64_t* key) const {
  if (g.num_buckets == 0) return ~0ull;
  const uint8_t tag = TagOf(h);
  const uint64_t b1 = BucketA(h, g.num_buckets);
  for (int i = 0; i < kSlotsPerBucket; ++i) {
    const uint64_t slot = b1 * kSlotsPerBucket + i;
    if (g.tags[slot] == tag && g.hashes[slot] == h && KeyEquals(g, slot, key)) {
      return slot;
    }
  }
  const uint64_t b2 = BucketB(h, g.num_buckets);
  if (b2 != b1) {
    for (int i = 0; i < kSlotsPerBucket; ++i) {
      const uint64_t slot = b2 * kSlotsPerBucket + i;
      if (g.tags[slot] == tag && g.hashes[slot] == h &&
          KeyEquals(g, slot, key)) {
        return slot;
      }
    }
  }
  return ~0ull;
}

int FlowTable::FindStash(uint64_t h, const uint64_t* key) const {
  for (size_t i = 0; i < stash_hashes_.size(); ++i) {
    if (stash_hashes_[i] == h &&
        (key_words_ == 0 ||
         std::memcmp(stash_keys_.data() + i * key_words_, key,
                     key_words_ * sizeof(uint64_t)) == 0)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void FlowTable::EraseStash(size_t idx) {
  const size_t last = stash_hashes_.size() - 1;
  if (idx != last) {
    stash_hashes_[idx] = stash_hashes_[last];
    std::copy_n(stash_keys_.data() + last * key_words_, key_words_,
                stash_keys_.data() + idx * key_words_);
    std::copy_n(stash_values_.data() + last * value_words_, value_words_,
                stash_values_.data() + idx * value_words_);
  }
  stash_hashes_.pop_back();
  stash_keys_.resize(last * key_words_);
  stash_values_.resize(last * value_words_);
}

bool FlowTable::Lookup(const uint64_t* key, uint64_t* value_out) const {
  const uint64_t h = Hash(key);
  uint64_t slot = FindInGen(cur_, h, key);
  const Gen* g = &cur_;
  if (slot == ~0ull && old_.num_buckets != 0) {
    slot = FindInGen(old_, h, key);
    g = &old_;
  }
  if (slot != ~0ull) {
    if (value_out != nullptr && value_words_ != 0) {
      std::copy_n(ValueAt(*g, slot), value_words_, value_out);
    }
    return true;
  }
  const int si = FindStash(h, key);
  if (si < 0) return false;
  if (value_out != nullptr && value_words_ != 0) {
    std::copy_n(stash_values_.data() +
                    static_cast<size_t>(si) * value_words_,
                value_words_, value_out);
  }
  return true;
}

int FlowTable::ProbeSlots(const uint64_t* key) const {
  const uint64_t h = Hash(key);
  int probes = 0;
  for (const Gen* g : {&cur_, &old_}) {
    if (g->num_buckets == 0) continue;
    const uint64_t b1 = BucketA(h, g->num_buckets);
    const uint64_t b2 = BucketB(h, g->num_buckets);
    for (int i = 0; i < kSlotsPerBucket; ++i) {
      ++probes;
      const uint64_t slot = b1 * kSlotsPerBucket + i;
      if (g->tags[slot] != 0 && g->hashes[slot] == h &&
          KeyEquals(*g, slot, key)) {
        return probes;
      }
    }
    if (b2 != b1) {
      for (int i = 0; i < kSlotsPerBucket; ++i) {
        ++probes;
        const uint64_t slot = b2 * kSlotsPerBucket + i;
        if (g->tags[slot] != 0 && g->hashes[slot] == h &&
            KeyEquals(*g, slot, key)) {
          return probes;
        }
      }
    }
  }
  probes += static_cast<int>(stash_hashes_.size());
  return probes;
}

void FlowTable::WriteSlot(Gen* g, uint64_t slot, uint64_t h,
                          const uint64_t* key, const uint64_t* value) {
  g->tags[slot] = TagOf(h);
  g->hashes[slot] = h;
  if (key_words_ != 0) std::copy_n(key, key_words_, KeyAt(*g, slot));
  if (value_words_ != 0) std::copy_n(value, value_words_, ValueAt(*g, slot));
}

bool FlowTable::InsertIntoGen(Gen* g, uint64_t h, const uint64_t* key,
                              const uint64_t* value) {
  // Fast path: an empty slot in either candidate bucket.
  const uint64_t b1 = BucketA(h, g->num_buckets);
  const uint64_t b2 = BucketB(h, g->num_buckets);
  for (const uint64_t b : {b1, b2}) {
    for (int i = 0; i < kSlotsPerBucket; ++i) {
      const uint64_t slot = b * kSlotsPerBucket + i;
      if (g->tags[slot] == 0) {
        WriteSlot(g, slot, h, key, value);
        return true;
      }
    }
    if (b2 == b1) break;
  }

  // Cuckoo walk: carry the incoming entry, displacing a rotating victim
  // from the target bucket until an empty slot turns up or the bound hits.
  carry_hash_ = h;
  if (key_words_ != 0) std::copy_n(key, key_words_, carry_key_.data());
  if (value_words_ != 0) std::copy_n(value, value_words_, carry_value_.data());
  uint64_t bucket = b1;
  for (int chain = 0; chain < max_kick_chain_; ++chain) {
    for (int i = 0; i < kSlotsPerBucket; ++i) {
      const uint64_t slot = bucket * kSlotsPerBucket + i;
      if (g->tags[slot] == 0) {
        WriteSlot(g, slot, carry_hash_, carry_key_.data(),
                  carry_value_.data());
        stats_.max_kick_chain = std::max<uint64_t>(stats_.max_kick_chain,
                                                   static_cast<uint64_t>(chain));
        if (kick_chain_hist_ != nullptr) {
          kick_chain_hist_->Observe(static_cast<double>(chain));
        }
        return true;
      }
    }
    const uint64_t victim =
        bucket * kSlotsPerBucket + (victim_rr_++ & (kSlotsPerBucket - 1));
    std::swap(carry_hash_, g->hashes[victim]);
    g->tags[victim] = TagOf(g->hashes[victim]);
    if (key_words_ != 0) {
      std::swap_ranges(carry_key_.begin(), carry_key_.end(), KeyAt(*g, victim));
    }
    if (value_words_ != 0) {
      std::swap_ranges(carry_value_.begin(), carry_value_.end(),
                       ValueAt(*g, victim));
    }
    ++stats_.kicks;
    bucket = AltBucket(carry_hash_, bucket, g->num_buckets);
  }
  stats_.max_kick_chain =
      std::max<uint64_t>(stats_.max_kick_chain,
                         static_cast<uint64_t>(max_kick_chain_));
  if (kick_chain_hist_ != nullptr) {
    kick_chain_hist_->Observe(static_cast<double>(max_kick_chain_));
  }
  return false;  // carry_* holds the leftover entry; caller stashes it
}

void FlowTable::StashCarry() {
  stash_hashes_.push_back(carry_hash_);
  stash_keys_.insert(stash_keys_.end(), carry_key_.begin(), carry_key_.end());
  stash_values_.insert(stash_values_.end(), carry_value_.begin(),
                       carry_value_.end());
  ++stats_.stash_spills;
  stats_.stash_peak = std::max<uint64_t>(stats_.stash_peak,
                                         stash_hashes_.size());
  if (stash_spill_counter_ != nullptr) stash_spill_counter_->Increment();
  if (recorder_ != nullptr) {
    recorder_->Record(flight_lane_, telemetry::EventId::kFlowTableStashSpill,
                      stash_hashes_.size(),
                      static_cast<uint64_t>(max_kick_chain_));
  }
}

void FlowTable::TryDrainStash() {
  for (size_t i = stash_hashes_.size(); i-- > 0;) {
    const uint64_t h = stash_hashes_[i];
    // Copy out first: EraseStash moves the tail entry into this index, and
    // InsertIntoGen may itself fail and refill carry_*.
    if (key_words_ != 0) {
      std::copy_n(stash_keys_.data() + i * key_words_, key_words_,
                  carry_key_.data());
    }
    if (value_words_ != 0) {
      std::copy_n(stash_values_.data() + i * value_words_, value_words_,
                  carry_value_.data());
    }
    const uint64_t b1 = BucketA(h, cur_.num_buckets);
    const uint64_t b2 = BucketB(h, cur_.num_buckets);
    bool placed = false;
    for (const uint64_t b : {b1, b2}) {
      for (int s = 0; s < kSlotsPerBucket && !placed; ++s) {
        const uint64_t slot = b * kSlotsPerBucket + s;
        if (cur_.tags[slot] == 0) {
          WriteSlot(&cur_, slot, h, carry_key_.data(), carry_value_.data());
          placed = true;
        }
      }
      if (placed || b2 == b1) break;
    }
    if (placed) EraseStash(i);
  }
}

void FlowTable::MaybeGrow() {
  const double limit =
      max_load_factor_ * static_cast<double>(cur_.slots());
  if (static_cast<double>(size_ + 1) <= limit) return;
  if (resizing()) {
    // Can't hold three generations; push the drain harder instead. With a
    // 2x growth factor the drain always finishes long before the new
    // generation fills, so this burst stays rare and bounded.
    ++stats_.forced_migration_bursts;
    if (recorder_ != nullptr) {
      recorder_->Record(flight_lane_,
                        telemetry::EventId::kFlowTableForcedMigration,
                        static_cast<uint64_t>(migrate_buckets_per_op_ * 4));
    }
    MigrateSome(migrate_buckets_per_op_ * 4);
    if (resizing()) return;
  }
  StartResize(size_ + 1);
}

void FlowTable::StartResize(uint64_t min_entries) {
  assert(!resizing());
  const uint64_t t0 = resize_pause_hist_ != nullptr ? NowUs() : 0;
  uint64_t new_buckets = cur_.num_buckets * 2;
  while (static_cast<double>(min_entries) >
         max_load_factor_ *
             static_cast<double>(new_buckets * kSlotsPerBucket)) {
    new_buckets *= 2;
  }
  old_ = std::move(cur_);
  cur_ = Gen{};
  AllocateGen(&cur_, new_buckets);
  migrate_pos_ = 0;
  ++generation_;
  ++stats_.resizes;
  if (resize_pause_hist_ != nullptr) {
    resize_pause_hist_->Observe(static_cast<double>(NowUs() - t0));
  }
  if (recorder_ != nullptr) {
    recorder_->Record(flight_lane_, telemetry::EventId::kFlowTableResizeBegin,
                      old_.num_buckets, cur_.num_buckets, size_);
  }
}

void FlowTable::FinishResize() {
  old_.Reset();
  migrate_pos_ = 0;
  ++generation_;
  TryDrainStash();
  if (recorder_ != nullptr) {
    recorder_->Record(flight_lane_, telemetry::EventId::kFlowTableResizeEnd,
                      stats_.migrated_buckets, stash_hashes_.size());
  }
}

void FlowTable::MigrateSome(int buckets) {
  if (!resizing()) return;
  const uint64_t t0 = resize_pause_hist_ != nullptr ? NowUs() : 0;
  for (int n = 0; n < buckets; ++n) {
    if (migrate_pos_ >= old_.num_buckets) break;
    const uint64_t base = migrate_pos_ * kSlotsPerBucket;
    for (int i = 0; i < kSlotsPerBucket; ++i) {
      const uint64_t slot = base + i;
      if (old_.tags[slot] == 0) continue;
      if (!InsertIntoGen(&cur_, old_.hashes[slot], KeyAt(old_, slot),
                         ValueAt(old_, slot))) {
        StashCarry();
      }
      old_.tags[slot] = 0;
    }
    ++migrate_pos_;
    ++stats_.migrated_buckets;
  }
  if (resize_pause_hist_ != nullptr) {
    resize_pause_hist_->Observe(static_cast<double>(NowUs() - t0));
  }
  if (migrate_pos_ >= old_.num_buckets) FinishResize();
}

void FlowTable::Upsert(const uint64_t* key, const uint64_t* value) {
  MigrateSome(migrate_buckets_per_op_);
  const uint64_t h = Hash(key);
  uint64_t slot = FindInGen(cur_, h, key);
  if (slot != ~0ull) {
    if (value_words_ != 0) std::copy_n(value, value_words_, ValueAt(cur_, slot));
    return;
  }
  if (old_.num_buckets != 0) {
    slot = FindInGen(old_, h, key);
    if (slot != ~0ull) {
      if (value_words_ != 0) {
        std::copy_n(value, value_words_, ValueAt(old_, slot));
      }
      return;
    }
  }
  const int si = FindStash(h, key);
  if (si >= 0) {
    if (value_words_ != 0) {
      std::copy_n(value, value_words_,
                  stash_values_.data() + static_cast<size_t>(si) * value_words_);
    }
    return;
  }

  MaybeGrow();
  ++size_;
  if (!InsertIntoGen(&cur_, h, key, value)) {
    StashCarry();
    // A failed walk means the active generation is effectively saturated
    // around this key's buckets; schedule a grow so the stash drains.
    if (!resizing()) StartResize(size_);
  }
}

bool FlowTable::Erase(const uint64_t* key) {
  MigrateSome(migrate_buckets_per_op_);
  const uint64_t h = Hash(key);
  uint64_t slot = FindInGen(cur_, h, key);
  if (slot != ~0ull) {
    cur_.tags[slot] = 0;
    --size_;
    return true;
  }
  if (old_.num_buckets != 0) {
    slot = FindInGen(old_, h, key);
    if (slot != ~0ull) {
      old_.tags[slot] = 0;
      --size_;
      return true;
    }
  }
  const int si = FindStash(h, key);
  if (si >= 0) {
    EraseStash(static_cast<size_t>(si));
    --size_;
    return true;
  }
  return false;
}

void FlowTable::Clear() {
  std::fill(cur_.tags.begin(), cur_.tags.end(), 0);
  old_.Reset();
  migrate_pos_ = 0;
  ++generation_;
  stash_hashes_.clear();
  stash_keys_.clear();
  stash_values_.clear();
  size_ = 0;
}

void FlowTable::AttachTelemetry(telemetry::MetricsRegistry* registry,
                                const telemetry::LabelSet& labels,
                                telemetry::FlightRecorder* recorder,
                                uint16_t lane) {
  recorder_ = recorder;
  flight_lane_ = lane;
  if (registry == nullptr) return;
  const std::vector<double> chain_bounds = {0, 1, 2, 4, 8, 16, 32, 64, 128};
  const std::vector<double> probe_bounds = {1, 2, 4, 8, 12, 16, 24, 32};
  const std::vector<double> scan_bounds = {16,   64,    256,   1024,
                                           4096, 16384, 65536, 262144};
  kick_chain_hist_ = registry->GetHistogram(
      "gallium_flow_kick_chain_len", labels, chain_bounds,
      "cuckoo displacements per insert that left the fast path");
  resize_pause_hist_ = registry->GetHistogram(
      "gallium_flow_resize_pause_us", labels,
      telemetry::DefaultLatencyBucketsUs(),
      "wall-clock pause of one grow allocation or migration burst");
  probe_len_hist_ = registry->GetHistogram(
      "gallium_flow_probe_len", labels, probe_bounds,
      "slots examined per lookup (sampled at scrape points)");
  sweep_scan_hist_ = registry->GetHistogram(
      "gallium_flow_sweep_scan_slots", labels, scan_bounds,
      "slots visited per budgeted SweepExpired batch");
  sweep_batches_ =
      registry->GetCounter("gallium_flow_sweep_batches_total", labels,
                           "budgeted aging sweep batches run");
  sweep_expired_ =
      registry->GetCounter("gallium_flow_sweep_expired_total", labels,
                           "entries expired by aging sweeps");
  stash_spill_counter_ =
      registry->GetCounter("gallium_flow_stash_spills_total", labels,
                           "kick walks that ended in the overflow stash");
  size_gauge_ = registry->GetGauge("gallium_flow_table_size", labels,
                                   "live entries");
  capacity_gauge_ = registry->GetGauge("gallium_flow_table_capacity_slots",
                                       labels, "slots across generations");
  occupancy_gauge_ = registry->GetGauge("gallium_flow_table_occupancy", labels,
                                        "size / capacity_slots");
  stash_gauge_ = registry->GetGauge("gallium_flow_table_stash_size", labels,
                                    "entries parked in the overflow stash");
  resizes_gauge_ = registry->GetGauge("gallium_flow_table_resizes", labels,
                                      "incremental resizes started");
  PublishMetrics();
}

void FlowTable::PublishMetrics(int probe_samples) {
  if (size_gauge_ == nullptr) return;
  size_gauge_->Set(static_cast<double>(size_));
  capacity_gauge_->Set(static_cast<double>(capacity_slots()));
  occupancy_gauge_->Set(
      capacity_slots() == 0
          ? 0.0
          : static_cast<double>(size_) / static_cast<double>(capacity_slots()));
  stash_gauge_->Set(static_cast<double>(stash_hashes_.size()));
  resizes_gauge_->Set(static_cast<double>(stats_.resizes));
  // Probe-length sample: walk occupied slots from the front of each
  // generation, bounded both in samples taken and slots scanned so a 10M
  // table never pays a full pass at a scrape point.
  if (probe_len_hist_ == nullptr || probe_samples <= 0) return;
  int sampled = 0;
  uint64_t scanned = 0;
  const uint64_t scan_budget = static_cast<uint64_t>(probe_samples) * 64;
  for (const Gen* g : {&cur_, &old_}) {
    const uint64_t slots = g->slots();
    for (uint64_t slot = 0;
         slot < slots && sampled < probe_samples && scanned < scan_budget;
         ++slot, ++scanned) {
      if (g->tags[slot] == 0) continue;
      probe_len_hist_->Observe(static_cast<double>(ProbeSlots(KeyAt(*g, slot))));
      ++sampled;
    }
  }
}

void FlowTable::RecordSweep(uint64_t visited, uint64_t expired) {
  if (sweep_batches_ != nullptr) {
    sweep_batches_->Increment();
    sweep_expired_->Increment(expired);
    sweep_scan_hist_->Observe(static_cast<double>(visited));
  }
  if (recorder_ != nullptr) {
    recorder_->Record(flight_lane_, telemetry::EventId::kFlowTableSweep,
                      visited, expired);
  }
}

}  // namespace gallium::state
