// Support headers shipped alongside generated server code.
//
// The generated DPDK application includes "gallium/runtime.h" and
// "gallium/dpdk_glue.h"; these functions return their contents so tools
// (and tests) can materialize a self-contained, compilable artifact
// directory. The artifact-compilation test runs a real C++ compiler over
// the emitted program against exactly these headers.
#pragma once

#include <string>

#include "util/status.h"

namespace gallium::cppgen {

// Packet / Verdict / SwitchSync / helpers (the middlebox-server runtime).
std::string RuntimeSupportHeader();

// DpdkInit / RxTxLoop (the I/O shim the generated main() drives).
std::string DpdkGlueHeader();

// Writes the generated server source plus both support headers into
// `directory` (creating gallium/ under it). Returns the path of the
// written source file.
Result<std::string> MaterializeServerArtifact(const std::string& directory,
                                              const std::string& name,
                                              const std::string& source);

}  // namespace gallium::cppgen
