#include "cppgen/codegen.h"

#include <set>
#include <sstream>

#include "analysis/cfg.h"
#include "util/strings.h"

namespace gallium::cppgen {

using ir::HeaderField;
using ir::InstId;
using ir::Instruction;
using ir::Opcode;
using ir::Reg;
using partition::Part;

namespace {

std::string HeaderExpr(HeaderField f) {
  switch (f) {
    case HeaderField::kEthSrc: return "pkt->eth()->src";
    case HeaderField::kEthDst: return "pkt->eth()->dst";
    case HeaderField::kEthType: return "pkt->eth()->ether_type";
    case HeaderField::kIpSrc: return "pkt->ip()->saddr";
    case HeaderField::kIpDst: return "pkt->ip()->daddr";
    case HeaderField::kIpProto: return "pkt->ip()->protocol";
    case HeaderField::kIpTtl: return "pkt->ip()->ttl";
    case HeaderField::kSrcPort: return "pkt->l4_sport()";
    case HeaderField::kDstPort: return "pkt->l4_dport()";
    case HeaderField::kTcpFlags: return "pkt->tcp()->flags";
    case HeaderField::kTcpSeq: return "pkt->tcp()->seq";
    case HeaderField::kTcpAck: return "pkt->tcp()->ack";
    case HeaderField::kIngressPort: return "gallium_hdr->orig_ingress";
  }
  return "/*?*/";
}

std::string HeaderLvalue(HeaderField f) {
  switch (f) {
    case HeaderField::kSrcPort: return "pkt->set_l4_sport";
    case HeaderField::kDstPort: return "pkt->set_l4_dport";
    default: return "";
  }
}

class CppEmitter {
 public:
  CppEmitter(const ir::Function& fn, const partition::PartitionPlan& plan,
             const CppGenOptions& options)
      : fn_(fn), plan_(plan), options_(options), cfg_(fn) {}

  Result<std::string> Generate();

 private:
  bool Replicable(InstId id) const {
    return id < static_cast<InstId>(plan_.replicable.size()) &&
           plan_.replicable[id];
  }
  bool Mine(const Instruction& inst) const {
    return plan_.assignment[inst.id] == Part::kNonOffloaded ||
           Replicable(inst.id);
  }
  bool ServerTouches(const ir::StateRef& ref) const {
    const auto it = plan_.state_placement.find(ref);
    return it != plan_.state_placement.end() &&
           it->second != partition::StatePlacement::kSwitchOnly;
  }

  std::string RegName(Reg r) const {
    return SanitizeIdentifier(fn_.reg_name(r)) + "_r" + std::to_string(r);
  }
  std::string ValueExpr(const ir::Value& v) const {
    if (v.is_imm()) return std::to_string(v.imm) + "ull";
    return RegName(v.reg);
  }
  // Expression for a branch condition in the server pass.
  std::string CondExpr(const ir::Value& cond) const;

  void DeclareRegs(std::ostringstream& out) const;
  void EmitInstruction(const Instruction& inst, const std::string& indent,
                       std::ostringstream& out) const;
  void EmitRegion(int block, int stop, int depth, std::ostringstream& out,
                  std::set<int>* visited) const;

  const ir::Function& fn_;
  const partition::PartitionPlan& plan_;
  CppGenOptions options_;
  analysis::CfgInfo cfg_;
};

std::string CppEmitter::CondExpr(const ir::Value& cond) const {
  if (cond.is_imm()) return std::to_string(cond.imm) + "ull != 0";
  const Reg r = cond.reg;
  // Locally computed (non-offloaded or replicable def)?
  for (const ir::BasicBlock& bb : fn_.blocks()) {
    for (const Instruction& inst : bb.insts) {
      for (Reg d : inst.dsts) {
        if (d == r && Mine(inst)) return RegName(r) + " != 0";
      }
    }
  }
  const int bit = plan_.to_server.CondBit(r);
  if (bit >= 0) {
    return "((gallium_hdr->cond_bits >> " + std::to_string(bit) +
           ") & 1) != 0";
  }
  const int slot = plan_.to_server.VarSlot(fn_, r);
  if (slot >= 0) {
    return "gallium_hdr->var[" + std::to_string(slot) + "] != 0";
  }
  return RegName(r) + " != 0";
}

void CppEmitter::DeclareRegs(std::ostringstream& out) const {
  // Declare every register the server pass can touch, initialized from the
  // transfer header when the value was produced on the switch.
  std::set<Reg> declared;
  auto declare = [&](Reg r, const std::string& init) {
    if (declared.count(r)) return;
    declared.insert(r);
    out << "    " << ir::WidthCppName(fn_.reg_width(r)) << " " << RegName(r)
        << " = " << init << ";\n";
  };
  for (size_t i = 0; i < plan_.to_server.cond_regs.size(); ++i) {
    declare(plan_.to_server.cond_regs[i],
            "(gallium_hdr->cond_bits >> " + std::to_string(i) + ") & 1");
  }
  int slot = 0;
  for (Reg r : plan_.to_server.var_regs) {
    const bool wide = ir::BitWidth(fn_.reg_width(r)) > 32;
    if (wide) {
      declare(r, "((uint64_t)gallium_hdr->var[" + std::to_string(slot) +
                     "] << 32) | gallium_hdr->var[" + std::to_string(slot + 1) +
                     "]");
      slot += 2;
    } else {
      declare(r, "gallium_hdr->var[" + std::to_string(slot) + "]");
      slot += 1;
    }
  }
  for (const ir::BasicBlock& bb : fn_.blocks()) {
    for (const Instruction& inst : bb.insts) {
      if (!Mine(inst)) continue;
      for (Reg r : inst.dsts) declare(r, "0");
    }
  }
  // Branch conditions are referenced by the emitted control flow even when
  // their defining statements run on the switch and no transfer exists
  // (fully-offloaded programs compile to a dead but valid process()).
  for (const ir::BasicBlock& bb : fn_.blocks()) {
    const Instruction& term = bb.terminator();
    if (term.op == Opcode::kBranch && term.args[0].is_reg()) {
      declare(term.args[0].reg, "0");
    }
  }
}

void CppEmitter::EmitInstruction(const Instruction& inst,
                                 const std::string& indent,
                                 std::ostringstream& out) const {
  auto dst = [&] { return RegName(inst.dsts[0]); };
  auto args_list = [&](size_t begin, size_t end) {
    std::string s;
    for (size_t i = begin; i < end; ++i) {
      if (i > begin) s += ", ";
      s += ValueExpr(inst.args[i]);
    }
    return s;
  };
  switch (inst.op) {
    case Opcode::kAssign:
      out << indent << dst() << " = " << ValueExpr(inst.args[0]) << ";\n";
      break;
    case Opcode::kAlu: {
      const std::string a = ValueExpr(inst.args[0]);
      const std::string b = inst.args.size() > 1 ? ValueExpr(inst.args[1]) : "0";
      static const std::map<ir::AluOp, std::string> kInfix = {
          {ir::AluOp::kAdd, "+"}, {ir::AluOp::kSub, "-"},
          {ir::AluOp::kAnd, "&"}, {ir::AluOp::kOr, "|"},
          {ir::AluOp::kXor, "^"}, {ir::AluOp::kShl, "<<"},
          {ir::AluOp::kShr, ">>"}, {ir::AluOp::kEq, "=="},
          {ir::AluOp::kNe, "!="}, {ir::AluOp::kLt, "<"},
          {ir::AluOp::kLe, "<="}, {ir::AluOp::kGt, ">"},
          {ir::AluOp::kGe, ">="}, {ir::AluOp::kMul, "*"},
          {ir::AluOp::kDiv, "/"}, {ir::AluOp::kMod, "%"}};
      if (inst.alu == ir::AluOp::kNot) {
        out << indent << dst() << " = ~" << a << ";\n";
      } else if (inst.alu == ir::AluOp::kHash) {
        out << indent << dst() << " = gallium::hash_mix(" << a << ", " << b
            << ");\n";
      } else {
        out << indent << dst() << " = " << a << " " << kInfix.at(inst.alu)
            << " " << b << ";\n";
      }
      break;
    }
    case Opcode::kHeaderRead:
      out << indent << dst() << " = " << HeaderExpr(inst.field) << ";\n";
      break;
    case Opcode::kHeaderWrite: {
      const std::string setter = HeaderLvalue(inst.field);
      if (!setter.empty()) {
        out << indent << setter << "(" << ValueExpr(inst.args[0]) << ");\n";
      } else {
        out << indent << HeaderExpr(inst.field) << " = "
            << ValueExpr(inst.args[0]) << ";\n";
      }
      break;
    }
    case Opcode::kPayloadMatch:
      out << indent << dst() << " = pkt->payload_contains(\""
          << fn_.patterns()[inst.pattern] << "\");\n";
      break;
    case Opcode::kPayloadLen:
      out << indent << dst() << " = pkt->payload_length();\n";
      break;
    case Opcode::kMapGet: {
      const std::string map = SanitizeIdentifier(fn_.map(inst.state).name);
      out << indent << "{\n";
      out << indent << "    auto it = " << map << "_.find({"
          << args_list(0, inst.args.size()) << "});\n";
      out << indent << "    " << RegName(inst.dsts[0]) << " = it != " << map
          << "_.end();\n";
      for (size_t d = 1; d < inst.dsts.size(); ++d) {
        out << indent << "    " << RegName(inst.dsts[d]) << " = "
            << RegName(inst.dsts[0]) << " ? it->second[" << (d - 1)
            << "] : 0;\n";
      }
      out << indent << "}\n";
      break;
    }
    case Opcode::kMapPut: {
      const ir::MapDecl& decl = fn_.map(inst.state);
      const std::string map = SanitizeIdentifier(decl.name);
      const size_t nkeys = decl.key_widths.size();
      out << indent << map << "_[{" << args_list(0, nkeys) << "}] = {"
          << args_list(nkeys, inst.args.size()) << "};\n";
      const ir::StateRef ref{ir::StateRef::Kind::kMap, inst.state};
      const auto it = plan_.state_placement.find(ref);
      if (it != plan_.state_placement.end() &&
          it->second == partition::StatePlacement::kReplicated) {
        out << indent << "sync_.StageInsert(\"" << map << "\", {"
            << args_list(0, nkeys) << "}, {" << args_list(nkeys,
                                                          inst.args.size())
            << "});\n";
      }
      break;
    }
    case Opcode::kMapDel: {
      const std::string map = SanitizeIdentifier(fn_.map(inst.state).name);
      out << indent << map << "_.erase({" << args_list(0, inst.args.size())
          << "});\n";
      const ir::StateRef ref{ir::StateRef::Kind::kMap, inst.state};
      const auto it = plan_.state_placement.find(ref);
      if (it != plan_.state_placement.end() &&
          it->second == partition::StatePlacement::kReplicated) {
        out << indent << "sync_.StageDelete(\"" << map << "\", {"
            << args_list(0, inst.args.size()) << "});\n";
      }
      break;
    }
    case Opcode::kGlobalRead:
      out << indent << dst() << " = "
          << SanitizeIdentifier(fn_.global(inst.state).name) << "_;\n";
      break;
    case Opcode::kGlobalWrite: {
      const std::string g = SanitizeIdentifier(fn_.global(inst.state).name);
      out << indent << g << "_ = " << ValueExpr(inst.args[0]) << ";\n";
      const ir::StateRef ref{ir::StateRef::Kind::kGlobal, inst.state};
      const auto it = plan_.state_placement.find(ref);
      if (it != plan_.state_placement.end() &&
          it->second == partition::StatePlacement::kReplicated) {
        out << indent << "sync_.StageRegister(\"" << g << "\", " << g
            << "_);\n";
      }
      break;
    }
    case Opcode::kVectorGet: {
      // Index-table miss semantics: out-of-range reads yield zero, exactly
      // like the switch-side exact-match table.
      const std::string vec = SanitizeIdentifier(fn_.vector(inst.state).name);
      out << indent << dst() << " = " << ValueExpr(inst.args[0]) << " < "
          << vec << "_.size() ? " << vec << "_[" << ValueExpr(inst.args[0])
          << "] : 0;\n";
      break;
    }
    case Opcode::kVectorLen:
      out << indent << dst() << " = "
          << SanitizeIdentifier(fn_.vector(inst.state).name) << "_.size();\n";
      break;
    case Opcode::kTimeRead:
      out << indent << dst() << " = gallium::now_msec();\n";
      break;
    case Opcode::kSend:
      out << indent << "verdict->send_port = " << ValueExpr(inst.args[0])
          << ";\n";
      out << indent << "verdict->action = Verdict::kSend;\n";
      break;
    case Opcode::kDrop:
      out << indent << "verdict->action = Verdict::kDrop;\n";
      break;
    default:
      break;
  }
}

void CppEmitter::EmitRegion(int block, int stop, int depth,
                            std::ostringstream& out,
                            std::set<int>* visited) const {
  const std::string indent(static_cast<size_t>(depth) * 4 + 4, ' ');
  int guard = 0;
  while (block != stop && block >= 0 && ++guard < 10000) {
    const ir::BasicBlock& bb = fn_.block(block);
    const bool in_loop = visited->count(block) > 0;
    visited->insert(block);

    for (const Instruction& inst : bb.insts) {
      if (inst.IsTerminator()) break;
      if (Mine(inst)) EmitInstruction(inst, indent, out);
    }
    const Instruction& term = bb.terminator();
    if (term.op == Opcode::kJump) {
      block = term.target_true;
      if (in_loop) break;
      continue;
    }
    if (term.op == Opcode::kReturn) return;

    const int join = cfg_.ImmediatePostDominator(block);
    // Loop back-edges: emit as a while loop when the branch targets an
    // already-visited block (server code may loop, unlike P4).
    if (term.target_true == block || term.target_false == block) {
      const bool true_is_body = term.target_true == block;
      out << indent << "while (" << CondExpr(term.args[0])
          << (true_is_body ? "" : " == false") << ") {\n";
      out << indent << "    // single-block loop body re-emitted above\n";
      out << indent << "}\n";
      block = true_is_body ? term.target_false : term.target_true;
      continue;
    }
    out << indent << "if (" << CondExpr(term.args[0]) << ") {\n";
    EmitRegion(term.target_true, join, depth + 1, out, visited);
    out << indent << "} else {\n";
    EmitRegion(term.target_false, join, depth + 1, out, visited);
    out << indent << "}\n";
    block = join;
  }
}

Result<std::string> CppEmitter::Generate() {
  std::ostringstream out;
  out << "// Generated by Gallium — non-offloaded partition of "
      << fn_.name() << ".\n";
  out << "// Runs as a DPDK application on the middlebox server; packets\n";
  out << "// arrive from the switch carrying the Gallium transfer header.\n";
  out << "#include <cstdint>\n#include <map>\n#include <vector>\n\n";
  out << "#include \"gallium/runtime.h\"   // Packet, Verdict, SwitchSync\n";
  out << "#include \"gallium/dpdk_glue.h\" // rte_eth rx/tx wrappers\n\n";
  out << "using gallium::Verdict;\n\n";
  out << "namespace {\n\n";
  out << "// Wire layout of the synthesized transfer header (Fig. 5).\n";
  out << "struct GalliumHeader {\n";
  out << "    uint16_t var_count;\n    uint16_t reserved;\n";
  out << "    uint32_t cond_bits;\n";
  out << "    uint32_t var[" << std::max(1, plan_.to_server.NumVarSlots(fn_))
      << "];\n";
  out << "    uint32_t orig_ingress;\n";
  out << "};\n\n";
  out << "}  // namespace\n\n";
  out << "class " << SanitizeIdentifier(fn_.name()) << "Server {\n";
  out << " public:\n";

  // --- State members ------------------------------------------------------------
  for (ir::StateIndex m = 0; m < fn_.maps().size(); ++m) {
    const ir::StateRef ref{ir::StateRef::Kind::kMap, m};
    if (!ServerTouches(ref)) continue;
    const ir::MapDecl& decl = fn_.map(m);
    out << "    std::map<std::vector<uint64_t>, std::vector<uint64_t>> "
        << SanitizeIdentifier(decl.name) << "_;  // "
        << decl.key_widths.size() << "-word key, max " << decl.max_entries
        << " entries\n";
  }
  for (ir::StateIndex v = 0; v < fn_.vectors().size(); ++v) {
    const ir::StateRef ref{ir::StateRef::Kind::kVector, v};
    if (!ServerTouches(ref)) continue;
    out << "    std::vector<uint64_t> "
        << SanitizeIdentifier(fn_.vector(v).name) << "_;\n";
  }
  for (ir::StateIndex g = 0; g < fn_.globals().size(); ++g) {
    const ir::StateRef ref{ir::StateRef::Kind::kGlobal, g};
    if (!ServerTouches(ref)) continue;
    out << "    " << ir::WidthCppName(fn_.global(g).width) << " "
        << SanitizeIdentifier(fn_.global(g).name) << "_ = "
        << fn_.global(g).init << ";\n";
  }
  out << "    gallium::SwitchSync sync_;  // write-back staging + bit flip "
         "(§4.3.3)\n\n";

  // --- process() -----------------------------------------------------------------
  out << "    void process(gallium::Packet* pkt, const GalliumHeader* "
         "gallium_hdr,\n                 gallium::Verdict* verdict) {\n";
  DeclareRegs(out);
  out << "\n";
  std::set<int> visited;
  EmitRegion(fn_.entry_block(), -1, 0, out, &visited);
  out << "\n";
  out << "        // Output commit: hold the packet until replicated-state\n";
  out << "        // updates are visible on the switch (§4.3.3).\n";
  out << "        if (sync_.HasStagedUpdates()) {\n";
  out << "            sync_.CommitAtomic();\n";
  out << "        }\n";
  out << "    }\n";
  out << "};\n\n";

  // --- Driver boilerplate ----------------------------------------------------------
  out << "int main(int argc, char** argv) {\n";
  out << "    gallium::DpdkInit(argc, argv);\n";
  out << "    " << SanitizeIdentifier(fn_.name()) << "Server server;\n";
  out << "    gallium::RxTxLoop loop(/*port=*/0);\n";
  out << "    for (;;) {\n";
  out << "        auto batch = loop.RxBurst();\n";
  out << "        for (auto& pkt : batch) {\n";
  out << "            const GalliumHeader* hdr = "
         "pkt.gallium_header<GalliumHeader>();\n";
  out << "            gallium::Verdict verdict;\n";
  out << "            server.process(&pkt, hdr, &verdict);\n";
  out << "            loop.Dispatch(std::move(pkt), verdict);\n";
  out << "        }\n";
  out << "    }\n";
  out << "}\n";
  return out.str();
}

}  // namespace

Result<std::string> GenerateServerCpp(const ir::Function& fn,
                                      const partition::PartitionPlan& plan,
                                      CppGenOptions options) {
  CppEmitter emitter(fn, plan, options);
  return emitter.Generate();
}

}  // namespace gallium::cppgen
