// Server (non-offloaded partition) C++ code generation.
//
// Emits the DPDK application the paper deploys on the middlebox server:
// state declarations for server-resident structures, the process() routine
// covering the non-offloaded partition (consuming the Gallium transfer
// header, re-reading stable header fields, resolving transferred branch
// bits), control-plane synchronization stubs for replicated state, and the
// configuration/driver boilerplate.
#pragma once

#include <string>

#include "ir/function.h"
#include "partition/plan.h"
#include "util/status.h"

namespace gallium::cppgen {

struct CppGenOptions {
  int server_port = 192;
};

Result<std::string> GenerateServerCpp(const ir::Function& fn,
                                      const partition::PartitionPlan& plan,
                                      CppGenOptions options = {});

}  // namespace gallium::cppgen
