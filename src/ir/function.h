// Function: the unit of compilation — one middlebox packet-processing entry
// point plus its state declarations (maps, vectors, globals) and payload
// patterns.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "ir/instruction.h"
#include "ir/types.h"
#include "util/status.h"

namespace gallium::ir {

// A hash map declaration (Click HashMap). `max_entries` is the developer
// annotation the paper requires before a map may be placed on the switch
// (§4.3.1: "Gallium requires a middlebox developer to annotate a maximum
// size for each HashMap that the developer wishes to offload").
//
// kLpm implements §7's "extra functionalities" extension: the map holds
// (prefix, prefix_len) entries installed at configuration time / through
// the control plane, and a lookup with a single address key returns the
// longest matching prefix's value — P4's native lpm match kind. Per-packet
// inserts into an LPM map are rejected by the verifier (entry keys carry a
// prefix length the data path cannot provide).
struct MapDecl {
  enum class MatchKind : uint8_t { kExact, kLpm };

  std::string name;
  std::vector<Width> key_widths;
  std::vector<Width> value_widths;
  uint64_t max_entries = 0;   // 0 = unannotated; not offloadable
  bool has_p4_impl = true;    // false for structures with no P4 counterpart
  MatchKind match_kind = MatchKind::kExact;

  bool is_lpm() const { return match_kind == MatchKind::kLpm; }

  int KeyBytes() const;
  int ValueBytes() const;
  // Switch memory footprint if offloaded: entries × (key + value + overhead).
  uint64_t SwitchBytes() const;
};

// A read-mostly array (Click Vector). Offloadable as a P4 table indexed by
// position when `max_size` is annotated.
struct VectorDecl {
  std::string name;
  Width elem_width = Width::kU32;
  uint64_t max_size = 0;
  bool has_p4_impl = true;

  uint64_t SwitchBytes() const;
};

// A scalar global (e.g. MazuNAT's port-allocation counter). Maps to a P4
// register when offloaded (§4.3.1).
struct GlobalDecl {
  std::string name;
  Width width = Width::kU32;
  uint64_t init = 0;

  uint64_t SwitchBytes() const { return ByteWidth(width); }
};

// Identifies one global-state object for the single-access constraint
// (Constraint 3) and replication decisions.
struct StateRef {
  enum class Kind : uint8_t { kMap, kVector, kGlobal };
  Kind kind = Kind::kMap;
  StateIndex index = 0;

  auto operator<=>(const StateRef&) const = default;
  std::string ToString() const;
};

struct BasicBlock {
  int id = -1;
  std::string name;
  std::vector<Instruction> insts;

  const Instruction& terminator() const { return insts.back(); }
  bool HasTerminator() const {
    return !insts.empty() && insts.back().IsTerminator();
  }
};

// Addresses an instruction by position; `Function::Locate` maps InstId to it.
struct InstRef {
  int block = -1;
  int index = -1;
  bool valid() const { return block >= 0; }
  auto operator<=>(const InstRef&) const = default;
};

class Function {
 public:
  explicit Function(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- Blocks -----------------------------------------------------------------
  int AddBlock(std::string block_name);
  BasicBlock& block(int id) { return blocks_[id]; }
  const BasicBlock& block(int id) const { return blocks_[id]; }
  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  int entry_block() const { return entry_; }
  void set_entry_block(int id) { entry_ = id; }
  std::vector<BasicBlock>& blocks() { return blocks_; }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }

  // --- Registers ----------------------------------------------------------------
  Reg AddReg(Width width, std::string reg_name);
  Width reg_width(Reg r) const { return reg_widths_[r]; }
  const std::string& reg_name(Reg r) const { return reg_names_[r]; }
  int num_regs() const { return static_cast<int>(reg_widths_.size()); }

  // --- State declarations ------------------------------------------------------
  StateIndex AddMap(MapDecl decl);
  StateIndex AddVector(VectorDecl decl);
  StateIndex AddGlobal(GlobalDecl decl);
  const std::vector<MapDecl>& maps() const { return maps_; }
  const std::vector<VectorDecl>& vectors() const { return vectors_; }
  const std::vector<GlobalDecl>& globals() const { return globals_; }
  MapDecl& map(StateIndex i) { return maps_[i]; }
  const MapDecl& map(StateIndex i) const { return maps_[i]; }
  const VectorDecl& vector(StateIndex i) const { return vectors_[i]; }
  const GlobalDecl& global(StateIndex i) const { return globals_[i]; }

  uint32_t AddPattern(std::string pattern);
  const std::vector<std::string>& patterns() const { return patterns_; }

  // --- Instruction identity ------------------------------------------------------
  InstId NextInstId() { return next_inst_id_++; }
  int num_insts() const { return next_inst_id_; }

  // Recomputes the InstId -> position index (call after structural edits).
  std::vector<InstRef> BuildIndex() const;
  const Instruction* Find(InstId id) const;

  // Human-readable state name for diagnostics.
  std::string StateName(const StateRef& ref) const;

  // Returns the state object an instruction touches, if any.
  static bool InstStateRef(const Instruction& inst, StateRef* out);

 private:
  std::string name_;
  std::vector<BasicBlock> blocks_;
  int entry_ = 0;
  std::vector<Width> reg_widths_;
  std::vector<std::string> reg_names_;
  std::vector<MapDecl> maps_;
  std::vector<VectorDecl> vectors_;
  std::vector<GlobalDecl> globals_;
  std::vector<std::string> patterns_;
  InstId next_inst_id_ = 0;
};

}  // namespace gallium::ir
