// Low-level IR construction API. The Click-style frontend (src/frontend)
// wraps this with packet/data-structure handles; tests also use it directly.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "ir/function.h"

namespace gallium::ir {

struct MapGetResult {
  Reg found;                // u1: true if the key was present
  std::vector<Reg> values;  // one register per declared value word
};

class IrBuilder {
 public:
  explicit IrBuilder(Function* fn) : fn_(fn) {}

  Function* function() { return fn_; }

  // --- Block management -----------------------------------------------------
  int CreateBlock(std::string name) { return fn_->AddBlock(std::move(name)); }
  void SetInsertPoint(int block) { block_ = block; }
  int insert_block() const { return block_; }

  // --- Value producers --------------------------------------------------------
  Reg Assign(Value v, Width w, std::string name = "");
  Reg Alu(AluOp op, Value a, Value b, std::string name = "");
  Reg Alu(AluOp op, Value a, Value b, Width result_width,
          std::string name = "");
  Reg Not(Value a, std::string name = "");
  Reg HeaderRead(HeaderField f, std::string name = "");
  Reg PayloadMatch(uint32_t pattern, std::string name = "");
  Reg PayloadLen(std::string name = "");
  MapGetResult MapGet(StateIndex map, std::span<const Value> keys,
                      std::string name_prefix = "");
  Reg GlobalRead(StateIndex global, std::string name = "");
  Reg VectorGet(StateIndex vec, Value index, std::string name = "");
  Reg VectorLen(StateIndex vec, std::string name = "");
  Reg TimeRead(std::string name = "");

  // --- Side effects -----------------------------------------------------------
  void HeaderWrite(HeaderField f, Value v);
  void MapPut(StateIndex map, std::span<const Value> keys,
              std::span<const Value> values);
  void MapDel(StateIndex map, std::span<const Value> keys);
  void GlobalWrite(StateIndex global, Value v);
  void Send(Value egress_port);
  void Drop();

  // --- Terminators ---------------------------------------------------------------
  void Branch(Value cond, int if_true, int if_false);
  void Jump(int target);
  void Ret();

  // Width of a value (register width, or u64 for immediates unless narrowed).
  Width ValueWidth(const Value& v) const;

 private:
  Instruction& Append(Opcode op);

  Function* fn_;
  int block_ = 0;
};

// Shorthand constructors.
inline Value R(Reg r) { return Value::MakeReg(r); }
inline Value Imm(uint64_t v) { return Value::MakeImm(v); }

}  // namespace gallium::ir
