// Core type vocabulary of the Gallium IR.
//
// The IR is a register-based, statement-level intermediate representation
// standing in for the LLVM IR the paper compiles from (§5). It keeps exactly
// the properties Gallium's analyses need: one statement per packet-processing
// operation, explicit operands, and annotated abstract-data-type operations
// (maps/vectors/globals) so read/write sets can be constructed per §4.1.
#pragma once

#include <cstdint>
#include <string>

namespace gallium::ir {

// Integer widths supported by the IR. Programmable switches operate on
// integers only (§2.2); kU1 models branch-condition booleans.
enum class Width : uint8_t { kU1, kU8, kU16, kU32, kU64 };

int BitWidth(Width w);
int ByteWidth(Width w);
const char* WidthName(Width w);     // "u1", "u8", ...
const char* WidthCppName(Width w);  // "bool", "uint8_t", ...
uint64_t WidthMask(Width w);

// Virtual register index within one Function.
using Reg = uint32_t;
inline constexpr Reg kInvalidReg = 0xffffffff;

// An operand: either a virtual register or an immediate constant.
struct Value {
  enum class Kind : uint8_t { kReg, kImm };
  Kind kind = Kind::kImm;
  Reg reg = kInvalidReg;
  uint64_t imm = 0;

  static Value MakeReg(Reg r) { return Value{Kind::kReg, r, 0}; }
  static Value MakeImm(uint64_t v) { return Value{Kind::kImm, kInvalidReg, v}; }

  bool is_reg() const { return kind == Kind::kReg; }
  bool is_imm() const { return kind == Kind::kImm; }

  bool operator==(const Value&) const = default;
};

// Packet header fields the IR can address. Payload access is modeled by
// dedicated payload opcodes because it is never offloadable (§2.2: switches
// read/write only the first bytes of a packet).
enum class HeaderField : uint8_t {
  kEthSrc,
  kEthDst,
  kEthType,
  kIpSrc,
  kIpDst,
  kIpProto,
  kIpTtl,
  kSrcPort,   // TCP or UDP source port
  kDstPort,   // TCP or UDP destination port
  kTcpFlags,
  kTcpSeq,
  kTcpAck,
  kIngressPort,  // switch/NIC metadata: which port the packet arrived on
};
inline constexpr int kNumHeaderFields = 13;

const char* HeaderFieldName(HeaderField f);
Width HeaderFieldWidth(HeaderField f);

// ALU operations. The P4-supported subset is integer add/sub, bitwise ops,
// shifts, and comparisons (§2.2). Mul/div/mod and hashing are not offloaded
// (the paper's §7 notes hardware hash primitives exist but are unused).
enum class AluOp : uint8_t {
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kNot,  // unary
  kShl,
  kShr,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kMul,
  kDiv,
  kMod,
  kHash,  // multi-word mixing hash (used for five-tuple hashing)
};

const char* AluOpName(AluOp op);
bool AluOpSupportedByP4(AluOp op);
bool AluOpIsComparison(AluOp op);
bool AluOpIsUnary(AluOp op);

// Evaluates `op` on width-masked operands (shared by the interpreter and the
// switch simulator so both sides agree bit-for-bit).
uint64_t EvalAluOp(AluOp op, uint64_t a, uint64_t b, Width width);

// Index of a state object (map / vector / global) within a Function's
// declaration lists.
using StateIndex = uint32_t;

}  // namespace gallium::ir
