// IR cleanup passes.
//
// Middlebox source (especially machine-generated or heavily-macroed Click
// code) carries dead temporaries and constant expressions; cleaning them
// before partitioning shrinks the dependency graph, the switch metadata
// footprint, and the transfer sets. Both passes preserve semantics exactly
// — the property fuzzer checks optimized and unoptimized programs against
// each other.
#pragma once

#include "ir/function.h"

namespace gallium::ir {

// Removes side-effect-free statements whose results are never used,
// iterating to a fixpoint (removing one dead statement can orphan its
// inputs). Control flow, state writes, payload-less sends/drops, and
// anything with observable effects are never touched. Returns the number
// of statements removed.
int EliminateDeadCode(Function* fn);

// Folds ALU operations whose operands are all immediates into plain
// assignments, and propagates single-definition immediate assignments into
// their uses. Returns the number of statements simplified.
int FoldConstants(Function* fn);

// Convenience: runs FoldConstants and EliminateDeadCode alternately until
// neither makes progress. Returns total simplifications.
int OptimizeFunction(Function* fn);

}  // namespace gallium::ir
