// Textual renderings of IR functions.
//
// Two forms are produced:
//  - PrintFunction: the IR assembly listing used in diagnostics and tests.
//  - RenderClickSource: a C++/Click-style source rendering of the program
//    (one statement per IR instruction, gotos for control flow). This is the
//    "input middlebox source" whose line count Table 1 reports.
#pragma once

#include <string>

#include "ir/function.h"

namespace gallium::ir {

std::string PrintInstruction(const Function& fn, const Instruction& inst);
std::string PrintFunction(const Function& fn);

std::string RenderClickSource(const Function& fn);

}  // namespace gallium::ir
