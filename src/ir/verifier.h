// Structural and dataflow validation of IR functions.
//
// Every middlebox program is verified before compilation; the partitioner
// also re-verifies the three partition CFGs it produces.
#pragma once

#include "ir/function.h"
#include "util/status.h"

namespace gallium::ir {

// Checks:
//  - the entry block exists and every block ends in exactly one terminator
//    (no terminators mid-block),
//  - branch/jump targets are valid block ids,
//  - register operands are in range and every register is definitely
//    assigned before use on all paths from entry,
//  - map get/put/del arities match the map declaration,
//  - state indices and payload pattern ids are in range,
//  - instruction ids are unique.
Status VerifyFunction(const Function& fn);

// Warn-level diagnostic produced alongside verification. Warnings never fail
// a compile; the partitioner folds them into the plan report and the verify
// lint suite re-surfaces them as findings.
struct VerifyWarning {
  enum class Kind : uint8_t { kUnreachableBlock, kNeverReadRegister };
  Kind kind = Kind::kUnreachableBlock;
  int block = -1;  // kUnreachableBlock
  Reg reg = 0;     // kNeverReadRegister
  std::string message;
};

// Same checks as VerifyFunction; additionally appends warnings for blocks
// unreachable from entry and for registers that are written but never read.
// `warnings` may be null (then identical to VerifyFunction).
Status VerifyFunctionWithWarnings(const Function& fn,
                                  std::vector<VerifyWarning>* warnings);

}  // namespace gallium::ir
