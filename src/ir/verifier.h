// Structural and dataflow validation of IR functions.
//
// Every middlebox program is verified before compilation; the partitioner
// also re-verifies the three partition CFGs it produces.
#pragma once

#include "ir/function.h"
#include "util/status.h"

namespace gallium::ir {

// Checks:
//  - the entry block exists and every block ends in exactly one terminator
//    (no terminators mid-block),
//  - branch/jump targets are valid block ids,
//  - register operands are in range and every register is definitely
//    assigned before use on all paths from entry,
//  - map get/put/del arities match the map declaration,
//  - state indices and payload pattern ids are in range,
//  - instruction ids are unique.
Status VerifyFunction(const Function& fn);

}  // namespace gallium::ir
