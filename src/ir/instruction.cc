#include "ir/instruction.h"

namespace gallium::ir {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kAssign: return "assign";
    case Opcode::kAlu: return "alu";
    case Opcode::kHeaderRead: return "hdr_read";
    case Opcode::kHeaderWrite: return "hdr_write";
    case Opcode::kPayloadMatch: return "payload_match";
    case Opcode::kPayloadLen: return "payload_len";
    case Opcode::kMapGet: return "map_get";
    case Opcode::kMapPut: return "map_put";
    case Opcode::kMapDel: return "map_del";
    case Opcode::kGlobalRead: return "global_read";
    case Opcode::kGlobalWrite: return "global_write";
    case Opcode::kVectorGet: return "vec_get";
    case Opcode::kVectorLen: return "vec_len";
    case Opcode::kTimeRead: return "time_read";
    case Opcode::kSend: return "send";
    case Opcode::kDrop: return "drop";
    case Opcode::kBranch: return "br";
    case Opcode::kJump: return "jmp";
    case Opcode::kReturn: return "ret";
  }
  return "?";
}

std::vector<Reg> Instruction::UsedRegs() const {
  std::vector<Reg> regs;
  for (const Value& v : args) {
    if (v.is_reg()) regs.push_back(v.reg);
  }
  return regs;
}

}  // namespace gallium::ir
