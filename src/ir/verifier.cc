#include "ir/verifier.h"

#include <set>
#include <vector>

namespace gallium::ir {

namespace {

// Bitset over registers, sized dynamically.
using RegSet = std::vector<bool>;

RegSet Intersect(const RegSet& a, const RegSet& b) {
  RegSet out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] && b[i];
  return out;
}

Status CheckArity(const Function& fn, const Instruction& inst) {
  auto fail = [&](const std::string& what) {
    return Internal("inst " + std::to_string(inst.id) + " (" +
                    OpcodeName(inst.op) + "): " + what);
  };
  switch (inst.op) {
    case Opcode::kAssign:
      if (inst.dsts.size() != 1 || inst.args.size() != 1)
        return fail("assign arity");
      break;
    case Opcode::kAlu:
      if (inst.dsts.size() != 1) return fail("alu dst arity");
      if (AluOpIsUnary(inst.alu) ? inst.args.size() != 1
                                 : inst.args.size() != 2)
        return fail("alu arg arity");
      break;
    case Opcode::kHeaderRead:
    case Opcode::kPayloadMatch:
    case Opcode::kPayloadLen:
    case Opcode::kGlobalRead:
    case Opcode::kVectorLen:
    case Opcode::kTimeRead:
      if (inst.dsts.size() != 1 || !inst.args.empty())
        return fail("producer arity");
      break;
    case Opcode::kHeaderWrite:
    case Opcode::kGlobalWrite:
      if (!inst.dsts.empty() || inst.args.size() != 1)
        return fail("writer arity");
      break;
    case Opcode::kVectorGet:
      if (inst.dsts.size() != 1 || inst.args.size() != 1)
        return fail("vec_get arity");
      break;
    case Opcode::kMapGet: {
      if (inst.state >= fn.maps().size()) return fail("map index");
      const MapDecl& m = fn.map(inst.state);
      if (inst.args.size() != m.key_widths.size())
        return fail("map_get key arity");
      if (inst.dsts.size() != 1 + m.value_widths.size())
        return fail("map_get dst arity");
      break;
    }
    case Opcode::kMapPut: {
      if (inst.state >= fn.maps().size()) return fail("map index");
      const MapDecl& m = fn.map(inst.state);
      if (m.is_lpm()) {
        return fail("LPM maps are configuration-time only (no data-path put)");
      }
      if (inst.args.size() != m.key_widths.size() + m.value_widths.size())
        return fail("map_put arity");
      if (!inst.dsts.empty()) return fail("map_put has dsts");
      break;
    }
    case Opcode::kMapDel: {
      if (inst.state >= fn.maps().size()) return fail("map index");
      if (fn.map(inst.state).is_lpm()) {
        return fail("LPM maps are configuration-time only (no data-path del)");
      }
      if (inst.args.size() != fn.map(inst.state).key_widths.size())
        return fail("map_del arity");
      break;
    }
    case Opcode::kSend:
      if (inst.args.size() != 1) return fail("send arity");
      break;
    case Opcode::kDrop:
    case Opcode::kReturn:
      if (!inst.args.empty() || !inst.dsts.empty()) return fail("nullary op");
      break;
    case Opcode::kBranch:
      if (inst.args.size() != 1) return fail("branch arity");
      break;
    case Opcode::kJump:
      if (!inst.args.empty()) return fail("jump arity");
      break;
  }

  // State-index range checks for vector/global ops.
  if (inst.op == Opcode::kVectorGet || inst.op == Opcode::kVectorLen) {
    if (inst.state >= fn.vectors().size()) return fail("vector index");
  }
  if (inst.op == Opcode::kGlobalRead || inst.op == Opcode::kGlobalWrite) {
    if (inst.state >= fn.globals().size()) return fail("global index");
  }
  if (inst.op == Opcode::kPayloadMatch) {
    if (inst.pattern >= fn.patterns().size()) return fail("pattern index");
  }

  // Register range checks.
  for (Reg r : inst.dsts) {
    if (r >= static_cast<Reg>(fn.num_regs())) return fail("dst reg range");
  }
  for (const Value& v : inst.args) {
    if (v.is_reg() && v.reg >= static_cast<Reg>(fn.num_regs()))
      return fail("arg reg range");
  }
  return Status::Ok();
}

}  // namespace

Status VerifyFunction(const Function& fn) {
  if (fn.num_blocks() == 0) return Internal("function has no blocks");
  if (fn.entry_block() < 0 || fn.entry_block() >= fn.num_blocks()) {
    return Internal("bad entry block");
  }

  std::set<InstId> seen_ids;
  for (const BasicBlock& bb : fn.blocks()) {
    if (bb.insts.empty()) {
      return Internal("block " + bb.name + " is empty");
    }
    for (size_t i = 0; i < bb.insts.size(); ++i) {
      const Instruction& inst = bb.insts[i];
      const bool is_last = i + 1 == bb.insts.size();
      if (inst.IsTerminator() != is_last) {
        return Internal("block " + bb.name +
                        ": terminator placement at index " +
                        std::to_string(i));
      }
      if (!seen_ids.insert(inst.id).second) {
        return Internal("duplicate instruction id " + std::to_string(inst.id));
      }
      GALLIUM_RETURN_IF_ERROR(CheckArity(fn, inst));
      if (inst.op == Opcode::kBranch || inst.op == Opcode::kJump) {
        if (inst.target_true < 0 || inst.target_true >= fn.num_blocks()) {
          return Internal("bad branch target in " + bb.name);
        }
        if (inst.op == Opcode::kBranch &&
            (inst.target_false < 0 || inst.target_false >= fn.num_blocks())) {
          return Internal("bad branch false-target in " + bb.name);
        }
      }
    }
  }

  // Definite-assignment dataflow: IN[b] = intersection of OUT[preds];
  // OUT[b] = IN[b] plus defs in b. Entry starts empty. Iterate to fixpoint.
  const int nblocks = fn.num_blocks();
  const size_t nregs = static_cast<size_t>(fn.num_regs());
  std::vector<RegSet> out(nblocks, RegSet(nregs, false));
  std::vector<bool> reachable(nblocks, false);
  // Initialize OUT of reachable blocks pessimistically to "all defined" so
  // the intersection converges from above.
  for (auto& set : out) set.assign(nregs, true);

  bool changed = true;
  reachable[fn.entry_block()] = true;
  std::vector<std::vector<int>> preds(nblocks);
  for (const BasicBlock& bb : fn.blocks()) {
    const Instruction& term = bb.insts.back();
    if (term.op == Opcode::kBranch) {
      preds[term.target_true].push_back(bb.id);
      preds[term.target_false].push_back(bb.id);
    } else if (term.op == Opcode::kJump) {
      preds[term.target_true].push_back(bb.id);
    }
  }
  // Reachability fixpoint.
  {
    bool r_changed = true;
    while (r_changed) {
      r_changed = false;
      for (const BasicBlock& bb : fn.blocks()) {
        if (!reachable[bb.id]) continue;
        const Instruction& term = bb.insts.back();
        for (int t : {term.target_true, term.target_false}) {
          if (t >= 0 && !reachable[t]) {
            reachable[t] = true;
            r_changed = true;
          }
        }
      }
    }
  }

  std::string first_error;
  while (changed) {
    changed = false;
    for (const BasicBlock& bb : fn.blocks()) {
      if (!reachable[bb.id]) continue;
      RegSet in(nregs, bb.id != fn.entry_block());
      if (bb.id == fn.entry_block()) {
        in.assign(nregs, false);
      } else {
        bool first = true;
        for (int p : preds[bb.id]) {
          if (!reachable[p]) continue;
          if (first) {
            in = out[p];
            first = false;
          } else {
            in = Intersect(in, out[p]);
          }
        }
        if (first) in.assign(nregs, false);  // unreachable preds only
      }
      RegSet cur = in;
      for (const Instruction& inst : bb.insts) {
        for (const Value& v : inst.args) {
          if (v.is_reg() && !cur[v.reg] && first_error.empty()) {
            first_error = "register %" + fn.reg_name(v.reg) +
                          " possibly used before assignment in block " +
                          bb.name + " (inst " + std::to_string(inst.id) + ")";
          }
        }
        for (Reg r : inst.dsts) cur[r] = true;
      }
      if (cur != out[bb.id]) {
        out[bb.id] = std::move(cur);
        changed = true;
      }
    }
  }
  if (!first_error.empty()) {
    // Re-run the per-instruction check once more now that the fixpoint is
    // reached; the error recorded during iteration may have been transient.
    first_error.clear();
    for (const BasicBlock& bb : fn.blocks()) {
      if (!reachable[bb.id]) continue;
      RegSet in(nregs, false);
      bool first = true;
      if (bb.id != fn.entry_block()) {
        for (int p : preds[bb.id]) {
          if (!reachable[p]) continue;
          if (first) {
            in = out[p];
            first = false;
          } else {
            in = Intersect(in, out[p]);
          }
        }
      }
      RegSet cur = in;
      for (const Instruction& inst : bb.insts) {
        for (const Value& v : inst.args) {
          if (v.is_reg() && !cur[v.reg]) {
            return Internal("register %" + fn.reg_name(v.reg) +
                            " used before assignment in block " + bb.name);
          }
        }
        for (Reg r : inst.dsts) cur[r] = true;
      }
    }
  }

  return Status::Ok();
}

Status VerifyFunctionWithWarnings(const Function& fn,
                                  std::vector<VerifyWarning>* warnings) {
  GALLIUM_RETURN_IF_ERROR(VerifyFunction(fn));
  if (warnings == nullptr) return Status::Ok();

  // Reachability from entry (the main pass already validated targets).
  std::vector<bool> reachable(fn.num_blocks(), false);
  reachable[fn.entry_block()] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const BasicBlock& bb : fn.blocks()) {
      if (!reachable[bb.id]) continue;
      const Instruction& term = bb.insts.back();
      for (int t : {term.target_true, term.target_false}) {
        if (t >= 0 && !reachable[t]) {
          reachable[t] = true;
          changed = true;
        }
      }
    }
  }
  for (const BasicBlock& bb : fn.blocks()) {
    if (reachable[bb.id]) continue;
    VerifyWarning w;
    w.kind = VerifyWarning::Kind::kUnreachableBlock;
    w.block = bb.id;
    w.message = "block " + bb.name + " is unreachable from entry";
    warnings->push_back(std::move(w));
  }

  // Registers written (in reachable code) but never read anywhere.
  std::vector<bool> written(fn.num_regs(), false);
  std::vector<bool> read(fn.num_regs(), false);
  for (const BasicBlock& bb : fn.blocks()) {
    if (!reachable[bb.id]) continue;
    for (const Instruction& inst : bb.insts) {
      for (Reg r : inst.dsts) written[r] = true;
      for (const Value& v : inst.args) {
        if (v.is_reg()) read[v.reg] = true;
      }
    }
  }
  for (Reg r = 0; r < static_cast<Reg>(fn.num_regs()); ++r) {
    if (written[r] && !read[r]) {
      VerifyWarning w;
      w.kind = VerifyWarning::Kind::kNeverReadRegister;
      w.reg = r;
      w.message = "register %" + fn.reg_name(r) + " is written but never read";
      warnings->push_back(std::move(w));
    }
  }
  return Status::Ok();
}

}  // namespace gallium::ir
