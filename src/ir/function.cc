#include "ir/function.h"

namespace gallium::ir {

namespace {
int SumBytes(const std::vector<Width>& widths) {
  int total = 0;
  for (Width w : widths) total += ByteWidth(w);
  return total;
}
}  // namespace

int MapDecl::KeyBytes() const { return SumBytes(key_widths); }
int MapDecl::ValueBytes() const { return SumBytes(value_widths); }

uint64_t MapDecl::SwitchBytes() const {
  // Per-entry overhead models the match-unit key replication + validity bit
  // found in real TCAM/SRAM table layouts.
  constexpr uint64_t kPerEntryOverhead = 4;
  return max_entries *
         (static_cast<uint64_t>(KeyBytes() + ValueBytes()) + kPerEntryOverhead);
}

uint64_t VectorDecl::SwitchBytes() const {
  constexpr uint64_t kPerEntryOverhead = 4;  // index key bytes
  return max_size * (static_cast<uint64_t>(ByteWidth(elem_width)) +
                     kPerEntryOverhead);
}

std::string StateRef::ToString() const {
  const char* kind_name = kind == Kind::kMap      ? "map"
                          : kind == Kind::kVector ? "vector"
                                                  : "global";
  return std::string(kind_name) + "#" + std::to_string(index);
}

int Function::AddBlock(std::string block_name) {
  const int id = static_cast<int>(blocks_.size());
  BasicBlock bb;
  bb.id = id;
  bb.name = std::move(block_name);
  blocks_.push_back(std::move(bb));
  return id;
}

Reg Function::AddReg(Width width, std::string reg_name) {
  const Reg r = static_cast<Reg>(reg_widths_.size());
  reg_widths_.push_back(width);
  if (reg_name.empty()) reg_name = "t" + std::to_string(r);
  reg_names_.push_back(std::move(reg_name));
  return r;
}

StateIndex Function::AddMap(MapDecl decl) {
  maps_.push_back(std::move(decl));
  return static_cast<StateIndex>(maps_.size() - 1);
}

StateIndex Function::AddVector(VectorDecl decl) {
  vectors_.push_back(std::move(decl));
  return static_cast<StateIndex>(vectors_.size() - 1);
}

StateIndex Function::AddGlobal(GlobalDecl decl) {
  globals_.push_back(std::move(decl));
  return static_cast<StateIndex>(globals_.size() - 1);
}

uint32_t Function::AddPattern(std::string pattern) {
  patterns_.push_back(std::move(pattern));
  return static_cast<uint32_t>(patterns_.size() - 1);
}

std::vector<InstRef> Function::BuildIndex() const {
  std::vector<InstRef> index(next_inst_id_, InstRef{});
  for (const BasicBlock& bb : blocks_) {
    for (int i = 0; i < static_cast<int>(bb.insts.size()); ++i) {
      const InstId id = bb.insts[i].id;
      if (id >= 0 && id < next_inst_id_) index[id] = InstRef{bb.id, i};
    }
  }
  return index;
}

const Instruction* Function::Find(InstId id) const {
  for (const BasicBlock& bb : blocks_) {
    for (const Instruction& inst : bb.insts) {
      if (inst.id == id) return &inst;
    }
  }
  return nullptr;
}

std::string Function::StateName(const StateRef& ref) const {
  switch (ref.kind) {
    case StateRef::Kind::kMap: return maps_[ref.index].name;
    case StateRef::Kind::kVector: return vectors_[ref.index].name;
    case StateRef::Kind::kGlobal: return globals_[ref.index].name;
  }
  return "?";
}

bool Function::InstStateRef(const Instruction& inst, StateRef* out) {
  switch (inst.op) {
    case Opcode::kMapGet:
    case Opcode::kMapPut:
    case Opcode::kMapDel:
      *out = StateRef{StateRef::Kind::kMap, inst.state};
      return true;
    case Opcode::kVectorGet:
    case Opcode::kVectorLen:
      *out = StateRef{StateRef::Kind::kVector, inst.state};
      return true;
    case Opcode::kGlobalRead:
    case Opcode::kGlobalWrite:
      *out = StateRef{StateRef::Kind::kGlobal, inst.state};
      return true;
    default:
      return false;
  }
}

}  // namespace gallium::ir
