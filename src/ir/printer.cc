#include "ir/printer.h"

#include <sstream>

#include "util/strings.h"

namespace gallium::ir {

namespace {

std::string ValueStr(const Function& fn, const Value& v) {
  if (v.is_imm()) return std::to_string(v.imm);
  return "%" + fn.reg_name(v.reg);
}

std::string DstStr(const Function& fn, Reg r) {
  return "%" + fn.reg_name(r);
}

std::string ArgsStr(const Function& fn, const Instruction& inst) {
  std::ostringstream out;
  for (size_t i = 0; i < inst.args.size(); ++i) {
    if (i) out << ", ";
    out << ValueStr(fn, inst.args[i]);
  }
  return out.str();
}

}  // namespace

std::string PrintInstruction(const Function& fn, const Instruction& inst) {
  std::ostringstream out;
  out << "[" << inst.id << "] ";
  switch (inst.op) {
    case Opcode::kAssign:
      out << DstStr(fn, inst.dsts[0]) << " = " << ValueStr(fn, inst.args[0]);
      break;
    case Opcode::kAlu:
      out << DstStr(fn, inst.dsts[0]) << " = " << AluOpName(inst.alu) << " "
          << ArgsStr(fn, inst);
      break;
    case Opcode::kHeaderRead:
      out << DstStr(fn, inst.dsts[0]) << " = hdr_read "
          << HeaderFieldName(inst.field);
      break;
    case Opcode::kHeaderWrite:
      out << "hdr_write " << HeaderFieldName(inst.field) << ", "
          << ValueStr(fn, inst.args[0]);
      break;
    case Opcode::kPayloadMatch:
      out << DstStr(fn, inst.dsts[0]) << " = payload_match \""
          << fn.patterns()[inst.pattern] << "\"";
      break;
    case Opcode::kPayloadLen:
      out << DstStr(fn, inst.dsts[0]) << " = payload_len";
      break;
    case Opcode::kMapGet: {
      out << "(";
      for (size_t i = 0; i < inst.dsts.size(); ++i) {
        if (i) out << ", ";
        out << DstStr(fn, inst.dsts[i]);
      }
      out << ") = map_get " << fn.map(inst.state).name << "["
          << ArgsStr(fn, inst) << "]";
      break;
    }
    case Opcode::kMapPut: {
      const MapDecl& m = fn.map(inst.state);
      const size_t nkeys = m.key_widths.size();
      out << "map_put " << m.name << "[";
      for (size_t i = 0; i < nkeys; ++i) {
        if (i) out << ", ";
        out << ValueStr(fn, inst.args[i]);
      }
      out << "] = (";
      for (size_t i = nkeys; i < inst.args.size(); ++i) {
        if (i > nkeys) out << ", ";
        out << ValueStr(fn, inst.args[i]);
      }
      out << ")";
      break;
    }
    case Opcode::kMapDel:
      out << "map_del " << fn.map(inst.state).name << "[" << ArgsStr(fn, inst)
          << "]";
      break;
    case Opcode::kGlobalRead:
      out << DstStr(fn, inst.dsts[0]) << " = global_read "
          << fn.global(inst.state).name;
      break;
    case Opcode::kGlobalWrite:
      out << "global_write " << fn.global(inst.state).name << ", "
          << ValueStr(fn, inst.args[0]);
      break;
    case Opcode::kVectorGet:
      out << DstStr(fn, inst.dsts[0]) << " = vec_get "
          << fn.vector(inst.state).name << "[" << ArgsStr(fn, inst) << "]";
      break;
    case Opcode::kVectorLen:
      out << DstStr(fn, inst.dsts[0]) << " = vec_len "
          << fn.vector(inst.state).name;
      break;
    case Opcode::kTimeRead:
      out << DstStr(fn, inst.dsts[0]) << " = time_read";
      break;
    case Opcode::kSend:
      out << "send port=" << ValueStr(fn, inst.args[0]);
      break;
    case Opcode::kDrop:
      out << "drop";
      break;
    case Opcode::kBranch:
      out << "br " << ValueStr(fn, inst.args[0]) << ", bb"
          << inst.target_true << ", bb" << inst.target_false;
      break;
    case Opcode::kJump:
      out << "jmp bb" << inst.target_true;
      break;
    case Opcode::kReturn:
      out << "ret";
      break;
  }
  return out.str();
}

std::string PrintFunction(const Function& fn) {
  std::ostringstream out;
  out << "function " << fn.name() << " {\n";
  for (const MapDecl& m : fn.maps()) {
    out << "  map " << m.name << " (keys=" << m.key_widths.size()
        << " vals=" << m.value_widths.size() << " max=" << m.max_entries
        << ")\n";
  }
  for (const VectorDecl& v : fn.vectors()) {
    out << "  vector " << v.name << " (max=" << v.max_size << ")\n";
  }
  for (const GlobalDecl& g : fn.globals()) {
    out << "  global " << g.name << " : " << WidthName(g.width) << " = "
        << g.init << "\n";
  }
  for (const BasicBlock& bb : fn.blocks()) {
    out << "bb" << bb.id << " (" << bb.name << "):\n";
    for (const Instruction& inst : bb.insts) {
      out << "  " << PrintInstruction(fn, inst) << "\n";
    }
  }
  out << "}\n";
  return out.str();
}

namespace {

// Renders a Value as a C++ expression.
std::string CppValue(const Function& fn, const Value& v) {
  if (v.is_imm()) return std::to_string(v.imm) + "u";
  return SanitizeIdentifier(fn.reg_name(v.reg));
}

std::string CppHeaderLvalue(HeaderField f) {
  switch (f) {
    case HeaderField::kEthSrc: return "eth->src";
    case HeaderField::kEthDst: return "eth->dst";
    case HeaderField::kEthType: return "eth->ether_type";
    case HeaderField::kIpSrc: return "ip->saddr";
    case HeaderField::kIpDst: return "ip->daddr";
    case HeaderField::kIpProto: return "ip->protocol";
    case HeaderField::kIpTtl: return "ip->ttl";
    case HeaderField::kSrcPort: return "l4->sport";
    case HeaderField::kDstPort: return "l4->dport";
    case HeaderField::kTcpFlags: return "tcp->flags";
    case HeaderField::kTcpSeq: return "tcp->seq";
    case HeaderField::kTcpAck: return "tcp->ack";
    case HeaderField::kIngressPort: return "pkt->ingress_port()";
  }
  return "?";
}

std::string CppArgs(const Function& fn, const Instruction& inst,
                    size_t begin = 0, size_t end = SIZE_MAX) {
  std::ostringstream out;
  if (end == SIZE_MAX) end = inst.args.size();
  for (size_t i = begin; i < end; ++i) {
    if (i > begin) out << ", ";
    out << CppValue(fn, inst.args[i]);
  }
  return out.str();
}

std::string CppAluExpr(const Function& fn, const Instruction& inst) {
  auto a = [&] { return CppValue(fn, inst.args[0]); };
  auto b = [&] { return CppValue(fn, inst.args[1]); };
  switch (inst.alu) {
    case AluOp::kAdd: return a() + " + " + b();
    case AluOp::kSub: return a() + " - " + b();
    case AluOp::kAnd: return a() + " & " + b();
    case AluOp::kOr: return a() + " | " + b();
    case AluOp::kXor: return a() + " ^ " + b();
    case AluOp::kNot: return "~" + a();
    case AluOp::kShl: return a() + " << " + b();
    case AluOp::kShr: return a() + " >> " + b();
    case AluOp::kEq: return a() + " == " + b();
    case AluOp::kNe: return a() + " != " + b();
    case AluOp::kLt: return a() + " < " + b();
    case AluOp::kLe: return a() + " <= " + b();
    case AluOp::kGt: return a() + " > " + b();
    case AluOp::kGe: return a() + " >= " + b();
    case AluOp::kMul: return a() + " * " + b();
    case AluOp::kDiv: return a() + " / " + b();
    case AluOp::kMod: return a() + " % " + b();
    case AluOp::kHash: return "hash_mix(" + a() + ", " + b() + ")";
  }
  return "?";
}

}  // namespace

std::string RenderClickSource(const Function& fn) {
  std::ostringstream out;
  out << "class " << SanitizeIdentifier(fn.name()) << " : public Element {\n";
  for (const MapDecl& m : fn.maps()) {
    out << "  HashMap<Key" << m.key_widths.size() << ", Value"
        << m.value_widths.size() << "> " << SanitizeIdentifier(m.name)
        << ";  // max_entries=" << m.max_entries << "\n";
  }
  for (const VectorDecl& v : fn.vectors()) {
    out << "  Vector<" << WidthCppName(v.elem_width) << "> "
        << SanitizeIdentifier(v.name) << ";  // max_size=" << v.max_size
        << "\n";
  }
  for (const GlobalDecl& g : fn.globals()) {
    out << "  " << WidthCppName(g.width) << " " << SanitizeIdentifier(g.name)
        << " = " << g.init << ";\n";
  }
  out << "\n  void process(Packet* pkt) {\n";

  auto dst_decl = [&](const Instruction& inst) {
    const Reg r = inst.dsts[0];
    return std::string(WidthCppName(fn.reg_width(r))) + " " +
           SanitizeIdentifier(fn.reg_name(r));
  };

  for (const BasicBlock& bb : fn.blocks()) {
    out << "  bb" << bb.id << ":  // " << bb.name << "\n";
    for (const Instruction& inst : bb.insts) {
      out << "    ";
      switch (inst.op) {
        case Opcode::kAssign:
          out << dst_decl(inst) << " = " << CppValue(fn, inst.args[0]) << ";";
          break;
        case Opcode::kAlu:
          out << dst_decl(inst) << " = " << CppAluExpr(fn, inst) << ";";
          break;
        case Opcode::kHeaderRead:
          out << dst_decl(inst) << " = " << CppHeaderLvalue(inst.field) << ";";
          break;
        case Opcode::kHeaderWrite:
          out << CppHeaderLvalue(inst.field) << " = "
              << CppValue(fn, inst.args[0]) << ";";
          break;
        case Opcode::kPayloadMatch:
          out << dst_decl(inst) << " = pkt->payload_matches(\""
              << fn.patterns()[inst.pattern] << "\");";
          break;
        case Opcode::kPayloadLen:
          out << dst_decl(inst) << " = pkt->payload_length();";
          break;
        case Opcode::kMapGet: {
          const MapDecl& m = fn.map(inst.state);
          out << "auto* " << SanitizeIdentifier(fn.reg_name(inst.dsts[0]))
              << "_ptr = " << SanitizeIdentifier(m.name) << ".find({"
              << CppArgs(fn, inst) << "});";
          break;
        }
        case Opcode::kMapPut: {
          const MapDecl& m = fn.map(inst.state);
          out << SanitizeIdentifier(m.name) << ".insert({" << CppArgs(fn, inst)
              << "});";
          break;
        }
        case Opcode::kMapDel:
          out << SanitizeIdentifier(fn.map(inst.state).name) << ".erase({"
              << CppArgs(fn, inst) << "});";
          break;
        case Opcode::kGlobalRead:
          out << dst_decl(inst) << " = "
              << SanitizeIdentifier(fn.global(inst.state).name) << ";";
          break;
        case Opcode::kGlobalWrite:
          out << SanitizeIdentifier(fn.global(inst.state).name) << " = "
              << CppValue(fn, inst.args[0]) << ";";
          break;
        case Opcode::kVectorGet:
          out << dst_decl(inst) << " = "
              << SanitizeIdentifier(fn.vector(inst.state).name) << "["
              << CppValue(fn, inst.args[0]) << "];";
          break;
        case Opcode::kVectorLen:
          out << dst_decl(inst) << " = "
              << SanitizeIdentifier(fn.vector(inst.state).name) << ".size();";
          break;
        case Opcode::kTimeRead:
          out << dst_decl(inst) << " = Timestamp::now_msec();";
          break;
        case Opcode::kSend:
          out << "output(" << CppValue(fn, inst.args[0]) << ").push(pkt);";
          break;
        case Opcode::kDrop:
          out << "pkt->kill();";
          break;
        case Opcode::kBranch:
          out << "if (" << CppValue(fn, inst.args[0]) << ") goto bb"
              << inst.target_true << "; else goto bb" << inst.target_false
              << ";";
          break;
        case Opcode::kJump:
          out << "goto bb" << inst.target_true << ";";
          break;
        case Opcode::kReturn:
          out << "return;";
          break;
      }
      out << "\n";
    }
  }
  out << "  }\n};\n";
  return out.str();
}

}  // namespace gallium::ir
