#include "ir/types.h"

#include <cassert>

namespace gallium::ir {

int BitWidth(Width w) {
  switch (w) {
    case Width::kU1: return 1;
    case Width::kU8: return 8;
    case Width::kU16: return 16;
    case Width::kU32: return 32;
    case Width::kU64: return 64;
  }
  return 0;
}

int ByteWidth(Width w) { return w == Width::kU1 ? 1 : BitWidth(w) / 8; }

const char* WidthName(Width w) {
  switch (w) {
    case Width::kU1: return "u1";
    case Width::kU8: return "u8";
    case Width::kU16: return "u16";
    case Width::kU32: return "u32";
    case Width::kU64: return "u64";
  }
  return "?";
}

const char* WidthCppName(Width w) {
  switch (w) {
    case Width::kU1: return "bool";
    case Width::kU8: return "uint8_t";
    case Width::kU16: return "uint16_t";
    case Width::kU32: return "uint32_t";
    case Width::kU64: return "uint64_t";
  }
  return "?";
}

uint64_t WidthMask(Width w) {
  switch (w) {
    case Width::kU1: return 1;
    case Width::kU8: return 0xff;
    case Width::kU16: return 0xffff;
    case Width::kU32: return 0xffffffff;
    case Width::kU64: return ~0ULL;
  }
  return 0;
}

const char* HeaderFieldName(HeaderField f) {
  switch (f) {
    case HeaderField::kEthSrc: return "eth.src";
    case HeaderField::kEthDst: return "eth.dst";
    case HeaderField::kEthType: return "eth.type";
    case HeaderField::kIpSrc: return "ip.saddr";
    case HeaderField::kIpDst: return "ip.daddr";
    case HeaderField::kIpProto: return "ip.proto";
    case HeaderField::kIpTtl: return "ip.ttl";
    case HeaderField::kSrcPort: return "l4.sport";
    case HeaderField::kDstPort: return "l4.dport";
    case HeaderField::kTcpFlags: return "tcp.flags";
    case HeaderField::kTcpSeq: return "tcp.seq";
    case HeaderField::kTcpAck: return "tcp.ack";
    case HeaderField::kIngressPort: return "meta.ingress_port";
  }
  return "?";
}

Width HeaderFieldWidth(HeaderField f) {
  switch (f) {
    case HeaderField::kEthSrc:
    case HeaderField::kEthDst:
      return Width::kU64;  // 48 bits stored in a u64 register
    case HeaderField::kEthType:
      return Width::kU16;
    case HeaderField::kIpSrc:
    case HeaderField::kIpDst:
      return Width::kU32;
    case HeaderField::kIpProto:
    case HeaderField::kIpTtl:
      return Width::kU8;
    case HeaderField::kSrcPort:
    case HeaderField::kDstPort:
      return Width::kU16;
    case HeaderField::kTcpFlags:
      return Width::kU8;
    case HeaderField::kTcpSeq:
    case HeaderField::kTcpAck:
      return Width::kU32;
    case HeaderField::kIngressPort:
      return Width::kU32;
  }
  return Width::kU32;
}

const char* AluOpName(AluOp op) {
  switch (op) {
    case AluOp::kAdd: return "add";
    case AluOp::kSub: return "sub";
    case AluOp::kAnd: return "and";
    case AluOp::kOr: return "or";
    case AluOp::kXor: return "xor";
    case AluOp::kNot: return "not";
    case AluOp::kShl: return "shl";
    case AluOp::kShr: return "shr";
    case AluOp::kEq: return "eq";
    case AluOp::kNe: return "ne";
    case AluOp::kLt: return "lt";
    case AluOp::kLe: return "le";
    case AluOp::kGt: return "gt";
    case AluOp::kGe: return "ge";
    case AluOp::kMul: return "mul";
    case AluOp::kDiv: return "div";
    case AluOp::kMod: return "mod";
    case AluOp::kHash: return "hash";
  }
  return "?";
}

bool AluOpSupportedByP4(AluOp op) {
  switch (op) {
    case AluOp::kAdd:
    case AluOp::kSub:
    case AluOp::kAnd:
    case AluOp::kOr:
    case AluOp::kXor:
    case AluOp::kNot:
    case AluOp::kShl:
    case AluOp::kShr:
    case AluOp::kEq:
    case AluOp::kNe:
    case AluOp::kLt:
    case AluOp::kLe:
    case AluOp::kGt:
    case AluOp::kGe:
      return true;
    case AluOp::kMul:
    case AluOp::kDiv:
    case AluOp::kMod:
    case AluOp::kHash:
      return false;
  }
  return false;
}

bool AluOpIsComparison(AluOp op) {
  switch (op) {
    case AluOp::kEq:
    case AluOp::kNe:
    case AluOp::kLt:
    case AluOp::kLe:
    case AluOp::kGt:
    case AluOp::kGe:
      return true;
    default:
      return false;
  }
}

bool AluOpIsUnary(AluOp op) { return op == AluOp::kNot; }

uint64_t EvalAluOp(AluOp op, uint64_t a, uint64_t b, Width width) {
  const uint64_t mask = WidthMask(width);
  a &= mask;
  b &= mask;
  uint64_t r = 0;
  switch (op) {
    case AluOp::kAdd: r = a + b; break;
    case AluOp::kSub: r = a - b; break;
    case AluOp::kAnd: r = a & b; break;
    case AluOp::kOr: r = a | b; break;
    case AluOp::kXor: r = a ^ b; break;
    case AluOp::kNot: r = ~a; break;
    case AluOp::kShl: r = b >= 64 ? 0 : a << b; break;
    case AluOp::kShr: r = b >= 64 ? 0 : a >> b; break;
    case AluOp::kEq: r = a == b; break;
    case AluOp::kNe: r = a != b; break;
    case AluOp::kLt: r = a < b; break;
    case AluOp::kLe: r = a <= b; break;
    case AluOp::kGt: r = a > b; break;
    case AluOp::kGe: r = a >= b; break;
    case AluOp::kMul: r = a * b; break;
    case AluOp::kDiv: r = b == 0 ? 0 : a / b; break;
    case AluOp::kMod: r = b == 0 ? 0 : a % b; break;
    case AluOp::kHash: {
      // FNV-1a style mix of both operands; deterministic everywhere.
      uint64_t h = 0xcbf29ce484222325ULL;
      for (uint64_t v : {a, b}) {
        for (int i = 0; i < 8; ++i) {
          h ^= (v >> (8 * i)) & 0xff;
          h *= 0x100000001b3ULL;
        }
      }
      r = h;
      break;
    }
  }
  return r & mask;
}

}  // namespace gallium::ir
