#include "ir/builder.h"

#include <algorithm>
#include <cassert>

namespace gallium::ir {

Instruction& IrBuilder::Append(Opcode op) {
  BasicBlock& bb = fn_->block(block_);
  assert(!bb.HasTerminator() && "appending after a terminator");
  Instruction inst;
  inst.op = op;
  inst.id = fn_->NextInstId();
  bb.insts.push_back(std::move(inst));
  return bb.insts.back();
}

Width IrBuilder::ValueWidth(const Value& v) const {
  if (v.is_reg()) return fn_->reg_width(v.reg);
  return Width::kU64;
}

Reg IrBuilder::Assign(Value v, Width w, std::string name) {
  const Reg dst = fn_->AddReg(w, std::move(name));
  Instruction& inst = Append(Opcode::kAssign);
  inst.dsts = {dst};
  inst.args = {v};
  return dst;
}

Reg IrBuilder::Alu(AluOp op, Value a, Value b, std::string name) {
  Width w;
  if (AluOpIsComparison(op)) {
    w = Width::kU1;
  } else {
    // Result width = the wider operand (immediates do not widen).
    w = a.is_reg() ? ValueWidth(a) : Width::kU32;
    if (b.is_reg() && BitWidth(ValueWidth(b)) > BitWidth(w)) w = ValueWidth(b);
  }
  return Alu(op, a, b, w, std::move(name));
}

Reg IrBuilder::Alu(AluOp op, Value a, Value b, Width result_width,
                   std::string name) {
  const Reg dst = fn_->AddReg(result_width, std::move(name));
  Instruction& inst = Append(Opcode::kAlu);
  inst.alu = op;
  inst.dsts = {dst};
  if (AluOpIsUnary(op)) {
    inst.args = {a};
  } else {
    inst.args = {a, b};
  }
  return dst;
}

Reg IrBuilder::Not(Value a, std::string name) {
  return Alu(AluOp::kNot, a, Imm(0), ValueWidth(a), std::move(name));
}

Reg IrBuilder::HeaderRead(HeaderField f, std::string name) {
  if (name.empty()) name = HeaderFieldName(f);
  const Reg dst = fn_->AddReg(HeaderFieldWidth(f), std::move(name));
  Instruction& inst = Append(Opcode::kHeaderRead);
  inst.field = f;
  inst.dsts = {dst};
  return dst;
}

Reg IrBuilder::PayloadMatch(uint32_t pattern, std::string name) {
  const Reg dst = fn_->AddReg(Width::kU1, std::move(name));
  Instruction& inst = Append(Opcode::kPayloadMatch);
  inst.pattern = pattern;
  inst.dsts = {dst};
  return dst;
}

Reg IrBuilder::PayloadLen(std::string name) {
  const Reg dst = fn_->AddReg(Width::kU32, std::move(name));
  Append(Opcode::kPayloadLen).dsts = {dst};
  return dst;
}

MapGetResult IrBuilder::MapGet(StateIndex map, std::span<const Value> keys,
                               std::string name_prefix) {
  const MapDecl& decl = fn_->map(map);
  assert(keys.size() == decl.key_widths.size());
  if (name_prefix.empty()) name_prefix = decl.name;

  MapGetResult result;
  result.found = fn_->AddReg(Width::kU1, name_prefix + "_found");
  Instruction& inst = Append(Opcode::kMapGet);
  inst.state = map;
  inst.dsts.push_back(result.found);
  for (size_t i = 0; i < decl.value_widths.size(); ++i) {
    const Reg v = fn_->AddReg(decl.value_widths[i],
                              name_prefix + "_v" + std::to_string(i));
    result.values.push_back(v);
    inst.dsts.push_back(v);
  }
  inst.args.assign(keys.begin(), keys.end());
  return result;
}

Reg IrBuilder::GlobalRead(StateIndex global, std::string name) {
  const GlobalDecl& decl = fn_->global(global);
  if (name.empty()) name = decl.name + "_val";
  const Reg dst = fn_->AddReg(decl.width, std::move(name));
  Instruction& inst = Append(Opcode::kGlobalRead);
  inst.state = global;
  inst.dsts = {dst};
  return dst;
}

Reg IrBuilder::VectorGet(StateIndex vec, Value index, std::string name) {
  const VectorDecl& decl = fn_->vector(vec);
  if (name.empty()) name = decl.name + "_elem";
  const Reg dst = fn_->AddReg(decl.elem_width, std::move(name));
  Instruction& inst = Append(Opcode::kVectorGet);
  inst.state = vec;
  inst.dsts = {dst};
  inst.args = {index};
  return dst;
}

Reg IrBuilder::VectorLen(StateIndex vec, std::string name) {
  const VectorDecl& decl = fn_->vector(vec);
  if (name.empty()) name = decl.name + "_size";
  const Reg dst = fn_->AddReg(Width::kU32, std::move(name));
  Instruction& inst = Append(Opcode::kVectorLen);
  inst.state = vec;
  inst.dsts = {dst};
  return dst;
}

Reg IrBuilder::TimeRead(std::string name) {
  if (name.empty()) name = "now_ms";
  const Reg dst = fn_->AddReg(Width::kU64, std::move(name));
  Append(Opcode::kTimeRead).dsts = {dst};
  return dst;
}

void IrBuilder::HeaderWrite(HeaderField f, Value v) {
  Instruction& inst = Append(Opcode::kHeaderWrite);
  inst.field = f;
  inst.args = {v};
}

void IrBuilder::MapPut(StateIndex map, std::span<const Value> keys,
                       std::span<const Value> values) {
  const MapDecl& decl = fn_->map(map);
  assert(keys.size() == decl.key_widths.size());
  assert(values.size() == decl.value_widths.size());
  (void)decl;
  Instruction& inst = Append(Opcode::kMapPut);
  inst.state = map;
  inst.args.assign(keys.begin(), keys.end());
  inst.args.insert(inst.args.end(), values.begin(), values.end());
}

void IrBuilder::MapDel(StateIndex map, std::span<const Value> keys) {
  assert(keys.size() == fn_->map(map).key_widths.size());
  Instruction& inst = Append(Opcode::kMapDel);
  inst.state = map;
  inst.args.assign(keys.begin(), keys.end());
}

void IrBuilder::GlobalWrite(StateIndex global, Value v) {
  Instruction& inst = Append(Opcode::kGlobalWrite);
  inst.state = global;
  inst.args = {v};
}

void IrBuilder::Send(Value egress_port) {
  Append(Opcode::kSend).args = {egress_port};
}

void IrBuilder::Drop() { Append(Opcode::kDrop); }

void IrBuilder::Branch(Value cond, int if_true, int if_false) {
  Instruction& inst = Append(Opcode::kBranch);
  inst.args = {cond};
  inst.target_true = if_true;
  inst.target_false = if_false;
}

void IrBuilder::Jump(int target) {
  Append(Opcode::kJump).target_true = target;
}

void IrBuilder::Ret() { Append(Opcode::kReturn); }

}  // namespace gallium::ir
