// IR instructions ("statements" in the paper's vocabulary).
//
// Each instruction corresponds to one partitionable statement: an ALU
// operation, a packet-header access, an annotated abstract-data-type call
// (map/vector/global), payload inspection, packet send/drop, or control flow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/types.h"

namespace gallium::ir {

enum class Opcode : uint8_t {
  kAssign,       // dsts[0] <- args[0]
  kAlu,          // dsts[0] <- alu(args[0], args[1])
  kHeaderRead,   // dsts[0] <- header[field]
  kHeaderWrite,  // header[field] <- args[0]
  kPayloadMatch, // dsts[0] <- payload contains pattern `pattern` (DPI)
  kPayloadLen,   // dsts[0] <- payload length in bytes
  kMapGet,       // (dsts[0]=found, dsts[1..]) <- map[state].find(args[0..])
  kMapPut,       // map[state].insert(keys=args[0..k), values=args[k..))
  kMapDel,       // map[state].erase(args[0..))
  kGlobalRead,   // dsts[0] <- global[state]
  kGlobalWrite,  // global[state] <- args[0]
  kVectorGet,    // dsts[0] <- vector[state][args[0]]
  kVectorLen,    // dsts[0] <- vector[state].size()
  kTimeRead,     // dsts[0] <- current time (ms); never offloadable
  kSend,         // emit packet on port args[0]
  kDrop,         // drop packet
  kBranch,       // if args[0] goto block[target_true] else block[target_false]
  kJump,         // goto block[target_true]
  kReturn,       // end of packet processing
};

const char* OpcodeName(Opcode op);

// Stable identifier of an instruction within its Function. Used as the vertex
// key of the dependency graph and as the subject of partition labels.
using InstId = int32_t;
inline constexpr InstId kInvalidInst = -1;

struct Instruction {
  Opcode op = Opcode::kReturn;
  InstId id = kInvalidInst;

  // Destination registers. kMapGet defines [found, value words...]; all other
  // value-producing opcodes define exactly dsts[0].
  std::vector<Reg> dsts;

  // Operand values. Layout by opcode:
  //   kAlu:     [a] or [a, b]
  //   kMapGet:  key words
  //   kMapPut:  key words then value words (split given by map declaration)
  //   kMapDel:  key words
  //   kSend:    [egress port]
  //   kBranch:  [condition]
  //   others:   see opcode comment
  std::vector<Value> args;

  AluOp alu = AluOp::kAdd;
  HeaderField field = HeaderField::kIpSrc;
  StateIndex state = 0;   // which map/vector/global declaration
  uint32_t pattern = 0;   // payload pattern index (kPayloadMatch)

  // Control-flow targets (block ids). kBranch uses both; kJump uses
  // target_true only.
  int target_true = -1;
  int target_false = -1;

  bool IsTerminator() const {
    return op == Opcode::kBranch || op == Opcode::kJump ||
           op == Opcode::kReturn;
  }

  // True for ops whose *only* effect is defining dsts (no state/packet/IO
  // side effects) — candidates for dead-code elimination after partitioning.
  bool IsPure() const {
    switch (op) {
      case Opcode::kAssign:
      case Opcode::kAlu:
      case Opcode::kHeaderRead:
      case Opcode::kPayloadMatch:
      case Opcode::kPayloadLen:
      case Opcode::kMapGet:     // reads state but has no side effect
      case Opcode::kGlobalRead:
      case Opcode::kVectorGet:
      case Opcode::kVectorLen:
      case Opcode::kTimeRead:
        return true;
      default:
        return false;
    }
  }

  bool AccessesMap() const {
    return op == Opcode::kMapGet || op == Opcode::kMapPut ||
           op == Opcode::kMapDel;
  }
  bool WritesState() const {
    return op == Opcode::kMapPut || op == Opcode::kMapDel ||
           op == Opcode::kGlobalWrite;
  }

  // All register operands read by this instruction.
  std::vector<Reg> UsedRegs() const;
  // All registers defined by this instruction (== dsts).
  const std::vector<Reg>& DefinedRegs() const { return dsts; }
};

}  // namespace gallium::ir
