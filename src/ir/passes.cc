#include "ir/passes.h"

#include <map>
#include <vector>

namespace gallium::ir {

namespace {

// Register use counts across the whole function (args of every statement,
// including terminators).
std::vector<int> CountUses(const Function& fn) {
  std::vector<int> uses(fn.num_regs(), 0);
  for (const BasicBlock& bb : fn.blocks()) {
    for (const Instruction& inst : bb.insts) {
      for (const Value& v : inst.args) {
        if (v.is_reg()) ++uses[v.reg];
      }
    }
  }
  return uses;
}

}  // namespace

int EliminateDeadCode(Function* fn) {
  int removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    const std::vector<int> uses = CountUses(*fn);
    for (BasicBlock& bb : fn->blocks()) {
      for (auto it = bb.insts.begin(); it != bb.insts.end();) {
        const Instruction& inst = *it;
        bool dead = inst.IsPure() && !inst.dsts.empty();
        for (Reg r : inst.dsts) {
          if (uses[r] > 0) dead = false;
        }
        if (dead) {
          it = bb.insts.erase(it);
          ++removed;
          changed = true;
        } else {
          ++it;
        }
      }
    }
  }
  return removed;
}

int FoldConstants(Function* fn) {
  int simplified = 0;

  // 1. Fold all-immediate ALU operations into assignments.
  for (BasicBlock& bb : fn->blocks()) {
    for (Instruction& inst : bb.insts) {
      if (inst.op != Opcode::kAlu) continue;
      bool all_imm = true;
      for (const Value& v : inst.args) all_imm &= v.is_imm();
      if (!all_imm) continue;
      const uint64_t a = inst.args[0].imm;
      const uint64_t b = inst.args.size() > 1 ? inst.args[1].imm : 0;
      const uint64_t folded =
          EvalAluOp(inst.alu, a, b, fn->reg_width(inst.dsts[0]));
      inst.op = Opcode::kAssign;
      inst.args = {Value::MakeImm(folded)};
      ++simplified;
    }
  }

  // 2. Propagate single-definition immediate assignments into uses. A
  // register with exactly one defining statement that is `r = <imm>` always
  // holds that immediate wherever it is readable (the verifier's definite
  // assignment guarantees the def precedes every use).
  std::map<Reg, int> def_count;
  std::map<Reg, uint64_t> imm_value;
  for (const BasicBlock& bb : fn->blocks()) {
    for (const Instruction& inst : bb.insts) {
      for (Reg r : inst.dsts) {
        ++def_count[r];
        if (inst.op == Opcode::kAssign && inst.args[0].is_imm()) {
          imm_value[r] = inst.args[0].imm & WidthMask(fn->reg_width(r));
        } else {
          imm_value.erase(r);
        }
      }
    }
  }
  for (BasicBlock& bb : fn->blocks()) {
    for (Instruction& inst : bb.insts) {
      for (Value& v : inst.args) {
        if (!v.is_reg()) continue;
        const auto it = imm_value.find(v.reg);
        if (it == imm_value.end() || def_count[v.reg] != 1) continue;
        v = Value::MakeImm(it->second);
        ++simplified;
      }
    }
  }
  return simplified;
}

int OptimizeFunction(Function* fn) {
  int total = 0;
  for (;;) {
    const int round = FoldConstants(fn) + EliminateDeadCode(fn);
    total += round;
    if (round == 0) return total;
  }
}

}  // namespace gallium::ir
