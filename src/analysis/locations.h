// Abstract memory locations and per-instruction read/write sets (§4.1).
//
// "Gallium provides a simple approach to extract all the instruction-level
// dependencies by comparing each instruction's read and write sets (i.e., the
// collection of variables an instruction accesses or modifies)."
//
// The location vocabulary covers everything a statement can touch: virtual
// registers (LLVM temporaries), packet header fields, the packet payload,
// annotated data structures (maps/vectors), scalar globals, the time source,
// and the packet-I/O effect (send/drop ordering).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.h"

namespace gallium::analysis {

struct Location {
  enum class Kind : uint8_t {
    kReg,      // virtual register; index = Reg
    kHeader,   // packet header field; index = HeaderField
    kPayload,  // packet payload (opaque blob)
    kMap,      // map state; index = map StateIndex
    kVector,   // vector state; index = vector StateIndex
    kGlobal,   // scalar global; index = global StateIndex
    kTime,     // wall-clock source
    kPacketIo, // the packet emission effect (send/drop)
  };

  Kind kind = Kind::kReg;
  uint32_t index = 0;

  static Location MakeReg(ir::Reg r) { return {Kind::kReg, r}; }
  static Location Header(ir::HeaderField f) {
    return {Kind::kHeader, static_cast<uint32_t>(f)};
  }
  static Location Payload() { return {Kind::kPayload, 0}; }
  static Location Map(ir::StateIndex i) { return {Kind::kMap, i}; }
  static Location Vector(ir::StateIndex i) { return {Kind::kVector, i}; }
  static Location Global(ir::StateIndex i) { return {Kind::kGlobal, i}; }
  static Location Time() { return {Kind::kTime, 0}; }
  static Location PacketIo() { return {Kind::kPacketIo, 0}; }

  bool IsState() const {
    return kind == Kind::kMap || kind == Kind::kVector || kind == Kind::kGlobal;
  }

  auto operator<=>(const Location&) const = default;
  std::string ToString(const ir::Function& fn) const;
};

struct ReadWriteSets {
  std::vector<Location> reads;
  std::vector<Location> writes;
};

// Builds the read and write sets of one instruction, applying the Click API
// annotations of §4.1:
//  - HashMap::find reads the key registers and the map, writes its results;
//  - HashMap::insert/erase read their arguments and write the map;
//  - Vector::operator[] reads the index and the vector;
//  - header accessors read/write the named header field;
//  - send() reads every header field and the payload (the emitted packet
//    reflects all prior writes) and writes the packet-I/O effect.
ReadWriteSets ComputeReadWriteSets(const ir::Function& fn,
                                   const ir::Instruction& inst);

// True when the two sets intersect.
bool Intersects(const std::vector<Location>& a, const std::vector<Location>& b);

}  // namespace gallium::analysis
