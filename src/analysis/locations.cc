#include "analysis/locations.h"

#include <algorithm>

namespace gallium::analysis {

using ir::Opcode;

std::string Location::ToString(const ir::Function& fn) const {
  switch (kind) {
    case Kind::kReg: return "%" + fn.reg_name(index);
    case Kind::kHeader:
      return ir::HeaderFieldName(static_cast<ir::HeaderField>(index));
    case Kind::kPayload: return "payload";
    case Kind::kMap: return "map:" + fn.map(index).name;
    case Kind::kVector: return "vec:" + fn.vector(index).name;
    case Kind::kGlobal: return "global:" + fn.global(index).name;
    case Kind::kTime: return "time";
    case Kind::kPacketIo: return "packet_io";
  }
  return "?";
}

ReadWriteSets ComputeReadWriteSets(const ir::Function& fn,
                                   const ir::Instruction& inst) {
  (void)fn;  // kept in the signature: annotations may become per-function
  ReadWriteSets sets;
  auto read_args = [&] {
    for (const ir::Value& v : inst.args) {
      if (v.is_reg()) sets.reads.push_back(Location::MakeReg(v.reg));
    }
  };
  auto write_dsts = [&] {
    for (ir::Reg r : inst.dsts) sets.writes.push_back(Location::MakeReg(r));
  };

  switch (inst.op) {
    case Opcode::kAssign:
    case Opcode::kAlu:
      read_args();
      write_dsts();
      break;
    case Opcode::kHeaderRead:
      sets.reads.push_back(Location::Header(inst.field));
      write_dsts();
      break;
    case Opcode::kHeaderWrite:
      read_args();
      sets.writes.push_back(Location::Header(inst.field));
      break;
    case Opcode::kPayloadMatch:
    case Opcode::kPayloadLen:
      sets.reads.push_back(Location::Payload());
      write_dsts();
      break;
    case Opcode::kMapGet:
      read_args();
      sets.reads.push_back(Location::Map(inst.state));
      write_dsts();
      break;
    case Opcode::kMapPut:
    case Opcode::kMapDel:
      read_args();
      sets.writes.push_back(Location::Map(inst.state));
      break;
    case Opcode::kGlobalRead:
      sets.reads.push_back(Location::Global(inst.state));
      write_dsts();
      break;
    case Opcode::kGlobalWrite:
      read_args();
      sets.writes.push_back(Location::Global(inst.state));
      break;
    case Opcode::kVectorGet:
      read_args();
      sets.reads.push_back(Location::Vector(inst.state));
      write_dsts();
      break;
    case Opcode::kVectorLen:
      sets.reads.push_back(Location::Vector(inst.state));
      write_dsts();
      break;
    case Opcode::kTimeRead:
      sets.reads.push_back(Location::Time());
      write_dsts();
      break;
    case Opcode::kSend:
      // The emitted packet reflects every header field and the payload, so a
      // send reads them all; it also consumes the packet (I/O effect).
      read_args();  // the egress port operand
      for (int f = 0; f < ir::kNumHeaderFields; ++f) {
        sets.reads.push_back(
            Location::Header(static_cast<ir::HeaderField>(f)));
      }
      sets.reads.push_back(Location::Payload());
      sets.writes.push_back(Location::PacketIo());
      break;
    case Opcode::kDrop:
      sets.writes.push_back(Location::PacketIo());
      break;
    case Opcode::kBranch:
      read_args();
      break;
    case Opcode::kJump:
    case Opcode::kReturn:
      break;
  }
  return sets;
}

bool Intersects(const std::vector<Location>& a,
                const std::vector<Location>& b) {
  for (const Location& la : a) {
    if (std::find(b.begin(), b.end(), la) != b.end()) return true;
  }
  return false;
}

}  // namespace gallium::analysis
