// Classic backward live-variable analysis over virtual registers.
//
// Used for (a) the partition-boundary "variable liveness test" that decides
// which temporaries must be carried in the synthesized packet header
// (§4.2.2 Constraint 5, §4.3.2) and (b) metadata-slot reuse on the switch
// (§4.3.1: "Gallium records when temporary variables are first and last used
// [and] reuses the memory consumed by variables that are no longer useful").
#pragma once

#include <vector>

#include "analysis/cfg.h"
#include "ir/function.h"

namespace gallium::analysis {

class Liveness {
 public:
  Liveness(const ir::Function& fn, const CfgInfo& cfg);

  // Registers live immediately before / after instruction `id` executes.
  const std::vector<bool>& LiveIn(ir::InstId id) const {
    return live_in_[id];
  }
  const std::vector<bool>& LiveOut(ir::InstId id) const {
    return live_out_[id];
  }

  // Registers live on entry to a block.
  const std::vector<bool>& BlockLiveIn(int block) const {
    return block_in_[block];
  }

 private:
  std::vector<std::vector<bool>> live_in_;    // per InstId
  std::vector<std::vector<bool>> live_out_;   // per InstId
  std::vector<std::vector<bool>> block_in_;   // per block
};

}  // namespace gallium::analysis
