#include "analysis/liveness.h"

namespace gallium::analysis {

Liveness::Liveness(const ir::Function& fn, const CfgInfo& cfg) {
  const int nblocks = fn.num_blocks();
  const size_t nregs = static_cast<size_t>(fn.num_regs());
  const int ninsts = fn.num_insts();

  live_in_.assign(ninsts, std::vector<bool>(nregs, false));
  live_out_.assign(ninsts, std::vector<bool>(nregs, false));
  block_in_.assign(nblocks, std::vector<bool>(nregs, false));
  std::vector<std::vector<bool>> block_out(nblocks,
                                           std::vector<bool>(nregs, false));

  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = nblocks - 1; b >= 0; --b) {
      if (!cfg.BlockReachable(b)) continue;
      // OUT[b] = union of IN[succ].
      std::vector<bool> out(nregs, false);
      for (int s : cfg.successors(b)) {
        for (size_t r = 0; r < nregs; ++r) {
          if (block_in_[s][r]) out[r] = true;
        }
      }
      block_out[b] = out;

      // Walk the block backwards.
      const ir::BasicBlock& bb = fn.block(b);
      std::vector<bool> live = out;
      for (int i = static_cast<int>(bb.insts.size()) - 1; i >= 0; --i) {
        const ir::Instruction& inst = bb.insts[i];
        live_out_[inst.id] = live;
        for (ir::Reg r : inst.dsts) live[r] = false;
        for (const ir::Value& v : inst.args) {
          if (v.is_reg()) live[v.reg] = true;
        }
        live_in_[inst.id] = live;
      }
      if (live != block_in_[b]) {
        block_in_[b] = std::move(live);
        changed = true;
      }
    }
  }
}

}  // namespace gallium::analysis
