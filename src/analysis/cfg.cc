#include "analysis/cfg.h"

#include <algorithm>
#include <cassert>

namespace gallium::analysis {

using ir::Opcode;

CfgInfo::CfgInfo(const ir::Function& fn) : fn_(&fn), index_(fn.BuildIndex()) {
  const int n = fn.num_blocks();
  succs_.resize(n);
  preds_.resize(n);
  for (const ir::BasicBlock& bb : fn.blocks()) {
    const ir::Instruction& term = bb.terminator();
    if (term.op == Opcode::kBranch) {
      succs_[bb.id] = {term.target_true, term.target_false};
    } else if (term.op == Opcode::kJump) {
      succs_[bb.id] = {term.target_true};
    }
    for (int s : succs_[bb.id]) preds_[s].push_back(bb.id);
  }
  ComputeReachability();
  ComputePostDominators();
  ComputeControlDependence();
}

void CfgInfo::ComputeReachability() {
  const int n = fn_->num_blocks();
  reachable_.assign(n, false);
  std::vector<int> stack{fn_->entry_block()};
  reachable_[fn_->entry_block()] = true;
  while (!stack.empty()) {
    const int b = stack.back();
    stack.pop_back();
    for (int s : succs_[b]) {
      if (!reachable_[s]) {
        reachable_[s] = true;
        stack.push_back(s);
      }
    }
  }

  // Strict reachability (path length >= 1) via iterated relaxation; CFGs are
  // small (tens of blocks) so the O(n^3) closure is fine.
  block_reach_.assign(n, std::vector<bool>(n, false));
  for (int b = 0; b < n; ++b) {
    for (int s : succs_[b]) block_reach_[b][s] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        if (!block_reach_[a][b]) continue;
        for (int c : succs_[b]) {
          if (!block_reach_[a][c]) {
            block_reach_[a][c] = true;
            changed = true;
          }
        }
      }
    }
  }
}

void CfgInfo::ComputePostDominators() {
  const int n = fn_->num_blocks();
  const int exit = n;  // virtual exit node
  // postdom sets over n+1 nodes, bit i set => node i post-dominates b.
  std::vector<std::vector<bool>> pdom(n + 1,
                                      std::vector<bool>(n + 1, true));
  pdom[exit].assign(n + 1, false);
  pdom[exit][exit] = true;

  auto exit_succs = [&](int b) {
    // Blocks whose terminator is kReturn flow to the virtual exit.
    std::vector<int> out = succs_[b];
    if (out.empty()) out.push_back(exit);
    return out;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = 0; b < n; ++b) {
      if (!reachable_[b]) continue;
      std::vector<bool> next(n + 1, true);
      bool first = true;
      for (int s : exit_succs(b)) {
        const std::vector<bool>& ps = pdom[s];
        if (first) {
          next = ps;
          first = false;
        } else {
          for (int i = 0; i <= n; ++i) next[i] = next[i] && ps[i];
        }
      }
      next[b] = true;
      if (next != pdom[b]) {
        pdom[b] = std::move(next);
        changed = true;
      }
    }
  }

  // Immediate post-dominator: the strict post-dominator with the smallest
  // strict-postdominator set.
  ipostdom_.assign(n, -1);
  auto count = [&](int b) {
    int c = 0;
    for (int i = 0; i <= n; ++i) c += pdom[b][i];
    return c;
  };
  for (int b = 0; b < n; ++b) {
    if (!reachable_[b]) continue;
    const int want = count(b) - 1;
    for (int p = 0; p <= n; ++p) {
      if (p == b || !pdom[b][p]) continue;
      const int pc = p == exit ? 1 : count(p);
      if (pc == want) {
        ipostdom_[b] = p == exit ? -1 : p;
        break;
      }
    }
  }

  // Stash pdom for control-dependence computation through a member-free
  // trick: recompute there. (Control dependence uses ipostdom_ and pdom; we
  // keep pdom local by folding the computation here.)
  control_deps_.assign(n, {});
  for (int a = 0; a < n; ++a) {
    if (!reachable_[a]) continue;
    const ir::Instruction& term = fn_->block(a).terminator();
    if (term.op != Opcode::kBranch) continue;
    for (int b : succs_[a]) {
      // Walk up from b through the post-dominator tree until reaching
      // ipostdom(a); every node on the way is control-dependent on term.
      int cur = b;
      while (cur != -1 && cur != ipostdom_[a]) {
        if (!pdom[b][cur] && cur != b) break;  // safety: stay on the chain
        auto& deps = control_deps_[cur];
        if (std::find(deps.begin(), deps.end(), term.id) == deps.end()) {
          deps.push_back(term.id);
        }
        cur = ipostdom_[cur];
      }
    }
  }
}

void CfgInfo::ComputeControlDependence() {
  // Folded into ComputePostDominators (needs the pdom sets).
}

bool CfgInfo::CanHappenAfter(ir::InstId later, ir::InstId earlier) const {
  const ir::InstRef ra = index_[earlier];
  const ir::InstRef rb = index_[later];
  if (!ra.valid() || !rb.valid()) return false;
  if (ra.block == rb.block) {
    if (rb.index > ra.index) return true;
    return block_reach_[ra.block][ra.block];  // via a cycle
  }
  return block_reach_[ra.block][rb.block];
}

bool CfgInfo::InLoop(ir::InstId inst) const {
  const ir::InstRef r = index_[inst];
  if (!r.valid()) return false;
  return block_reach_[r.block][r.block];
}

}  // namespace gallium::analysis
