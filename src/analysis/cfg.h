// Control-flow-graph facts: successors/predecessors, block and instruction
// reachability ("can happen after", §4.1), post-dominators, and control
// dependence.
#pragma once

#include <vector>

#include "ir/function.h"

namespace gallium::analysis {

class CfgInfo {
 public:
  explicit CfgInfo(const ir::Function& fn);

  const ir::Function& function() const { return *fn_; }

  const std::vector<int>& successors(int block) const { return succs_[block]; }
  const std::vector<int>& predecessors(int block) const {
    return preds_[block];
  }

  bool BlockReachable(int block) const { return reachable_[block]; }

  // True if there is a CFG path of length >= 1 from `from` to `to`
  // (block-level strict reachability; a block reaches itself only through a
  // cycle).
  bool BlockCanReach(int from, int to) const {
    return block_reach_[from][to];
  }

  // The paper's "can happen after" relation at instruction granularity:
  // true iff some execution trace performs `later` after `earlier`.
  bool CanHappenAfter(ir::InstId later, ir::InstId earlier) const;

  // Whether the instruction sits inside a CFG cycle (so it "can happen
  // after" itself — the loop condition of label rule 5).
  bool InLoop(ir::InstId inst) const;

  // Instruction ids of branch terminators that `block` is control-dependent
  // on (computed via post-dominance frontiers).
  const std::vector<ir::InstId>& ControllingBranches(int block) const {
    return control_deps_[block];
  }

  // Position of an instruction.
  ir::InstRef Ref(ir::InstId inst) const { return index_[inst]; }

  // Immediate post-dominator of each block (-1 for the virtual exit's
  // children that exit directly / unreachable blocks).
  int ImmediatePostDominator(int block) const { return ipostdom_[block]; }

 private:
  void ComputeReachability();
  void ComputePostDominators();
  void ComputeControlDependence();

  const ir::Function* fn_;
  std::vector<ir::InstRef> index_;
  std::vector<std::vector<int>> succs_;
  std::vector<std::vector<int>> preds_;
  std::vector<bool> reachable_;
  std::vector<std::vector<bool>> block_reach_;  // strict (path length >= 1)
  std::vector<int> ipostdom_;
  std::vector<std::vector<ir::InstId>> control_deps_;
};

}  // namespace gallium::analysis
