#include "analysis/depgraph.h"

#include <algorithm>

namespace gallium::analysis {

const char* DepKindName(DepKind kind) {
  switch (kind) {
    case DepKind::kData: return "data";
    case DepKind::kReverseData: return "reverse-data";
    case DepKind::kControl: return "control";
  }
  return "?";
}

DependencyGraph::DependencyGraph(const ir::Function& fn, const CfgInfo& cfg)
    : n_(fn.num_insts()),
      deps_of_(n_),
      users_of_(n_),
      sets_(n_) {
  // Collect instructions in a flat list and compute read/write sets.
  std::vector<const ir::Instruction*> insts(n_, nullptr);
  for (const ir::BasicBlock& bb : fn.blocks()) {
    if (!cfg.BlockReachable(bb.id)) continue;
    for (const ir::Instruction& inst : bb.insts) {
      insts[inst.id] = &inst;
      sets_[inst.id] = ComputeReadWriteSets(fn, inst);
    }
  }

  // Data and reverse-data dependencies over all "can happen after" pairs.
  for (int s1 = 0; s1 < n_; ++s1) {
    if (insts[s1] == nullptr) continue;
    for (int s2 = 0; s2 < n_; ++s2) {
      if (insts[s2] == nullptr || s1 == s2) continue;
      if (!cfg.CanHappenAfter(s2, s1)) continue;
      const ReadWriteSets& a = sets_[s1];
      const ReadWriteSets& b = sets_[s2];
      // Data: S1 writes what S2 reads or writes.
      if (Intersects(a.writes, b.reads) || Intersects(a.writes, b.writes)) {
        AddEdge(s1, s2, DepKind::kData);
      } else if (Intersects(a.reads, b.writes)) {
        // Reverse data: S1 reads what S2 modifies (WAR).
        AddEdge(s1, s2, DepKind::kReverseData);
      }
    }
  }

  // Control dependencies: every instruction in a control-dependent block
  // depends on the controlling branch instruction.
  for (const ir::BasicBlock& bb : fn.blocks()) {
    if (!cfg.BlockReachable(bb.id)) continue;
    for (ir::InstId branch : cfg.ControllingBranches(bb.id)) {
      for (const ir::Instruction& inst : bb.insts) {
        if (inst.id != branch) AddEdge(branch, inst.id, DepKind::kControl);
      }
    }
  }

  // Self edges for loop statements: a statement inside a cycle can happen
  // after itself; if it conflicts with itself (any write) it depends on
  // itself (the paper's rule-5 precondition).
  for (int s = 0; s < n_; ++s) {
    if (insts[s] == nullptr) continue;
    if (!cfg.CanHappenAfter(s, s)) continue;
    const ReadWriteSets& rw = sets_[s];
    if (!rw.writes.empty() || insts[s]->op == ir::Opcode::kBranch) {
      AddEdge(s, s, DepKind::kData);
    }
  }

  ComputeClosure();
  ComputeDistances();
}

void DependencyGraph::AddEdge(ir::InstId from, ir::InstId to, DepKind kind) {
  // Dedup: only the first kind for a pair is recorded (kind is diagnostic).
  auto& deps = deps_of_[to];
  if (std::find(deps.begin(), deps.end(), from) != deps.end()) return;
  deps.push_back(from);
  users_of_[from].push_back(to);
  edges_.push_back(DepEdge{from, to, kind});
}

bool DependencyGraph::DependsOn(ir::InstId s2, ir::InstId s1) const {
  const auto& deps = deps_of_[s2];
  return std::find(deps.begin(), deps.end(), s1) != deps.end();
}

void DependencyGraph::ComputeClosure() {
  closure_.assign(n_, std::vector<bool>(n_, false));
  for (const DepEdge& e : edges_) closure_[e.from][e.to] = true;
  // Floyd-Warshall style boolean closure; n is a few hundred at most.
  for (int k = 0; k < n_; ++k) {
    for (int i = 0; i < n_; ++i) {
      if (!closure_[i][k]) continue;
      const std::vector<bool>& row_k = closure_[k];
      std::vector<bool>& row_i = closure_[i];
      for (int j = 0; j < n_; ++j) {
        if (row_k[j]) row_i[j] = true;
      }
    }
  }
}

void DependencyGraph::ComputeDistances() {
  dist_entry_.assign(n_, 0);
  dist_exit_.assign(n_, 0);
  // Longest-path by repeated relaxation, n rounds max; nodes in dependency
  // cycles (self-reachable) are pinned at kUnbounded.
  for (int s = 0; s < n_; ++s) {
    if (closure_.empty() ? false : closure_[s][s]) {
      dist_entry_[s] = kUnbounded;
      dist_exit_[s] = kUnbounded;
    }
  }
  for (int round = 0; round < n_; ++round) {
    bool changed = false;
    for (const DepEdge& e : edges_) {
      if (e.from == e.to) continue;
      if (dist_entry_[e.from] != kUnbounded &&
          dist_entry_[e.to] != kUnbounded &&
          dist_entry_[e.to] < dist_entry_[e.from] + 1) {
        dist_entry_[e.to] = dist_entry_[e.from] + 1;
        changed = true;
      }
      if (dist_exit_[e.to] != kUnbounded && dist_exit_[e.from] != kUnbounded &&
          dist_exit_[e.from] < dist_exit_[e.to] + 1) {
        dist_exit_[e.from] = dist_exit_[e.to] + 1;
        changed = true;
      }
    }
    if (!changed) break;
  }
}

}  // namespace gallium::analysis
