// The statement dependency graph (§4.1, Fig. 3).
//
// Vertices are instructions; a directed edge S1 -> S2 records "S2 depends on
// S1" (the paper's S1 ⇝ S2). Edges are created, for every ordered pair where
// S2 can happen after S1, when one of the three conditions holds:
//  - data dependency: S1 writes state S2 reads or writes (RAW / WAW),
//  - reverse data dependency: S1 reads state S2 modifies (WAR),
//  - control dependency: S1 decides whether S2 executes.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/locations.h"
#include "ir/function.h"

namespace gallium::analysis {

enum class DepKind : uint8_t { kData, kReverseData, kControl };

const char* DepKindName(DepKind kind);

struct DepEdge {
  ir::InstId from = ir::kInvalidInst;  // S1
  ir::InstId to = ir::kInvalidInst;    // S2 (depends on S1)
  DepKind kind = DepKind::kData;
};

class DependencyGraph {
 public:
  // Distance assigned to statements inside CFG cycles (they transitively
  // depend on themselves, so no finite chain length exists).
  static constexpr int kUnbounded = std::numeric_limits<int>::max() / 2;

  DependencyGraph(const ir::Function& fn, const CfgInfo& cfg);

  int num_insts() const { return n_; }
  const std::vector<DepEdge>& edges() const { return edges_; }

  // Direct dependency: S1 ⇝ s (s depends on S1).
  const std::vector<ir::InstId>& DepsOf(ir::InstId s) const {
    return deps_of_[s];
  }
  // Direct dependents: every s2 with s ⇝ s2.
  const std::vector<ir::InstId>& UsersOf(ir::InstId s) const {
    return users_of_[s];
  }

  bool DependsOn(ir::InstId s2, ir::InstId s1) const;  // direct edge
  // s1 ⇝* s2 through at least one edge.
  bool TransitivelyDependsOn(ir::InstId s2, ir::InstId s1) const {
    return closure_[s1][s2];
  }
  // Loop membership (rule 5): s ⇝* s.
  bool SelfDependent(ir::InstId s) const { return closure_[s][s]; }

  // Length (edge count) of the longest dependency chain from any chain-start
  // to each instruction / from each instruction to any chain-end. Statements
  // in cycles get kUnbounded. These are the "dependency distance" metrics of
  // §4.2.2 used for the pipeline-depth constraint.
  const std::vector<int>& DistanceFromEntry() const { return dist_entry_; }
  const std::vector<int>& DistanceToExit() const { return dist_exit_; }

  const ReadWriteSets& Sets(ir::InstId s) const { return sets_[s]; }

 private:
  void AddEdge(ir::InstId from, ir::InstId to, DepKind kind);
  void ComputeClosure();
  void ComputeDistances();

  int n_ = 0;
  std::vector<DepEdge> edges_;
  std::vector<std::vector<ir::InstId>> deps_of_;
  std::vector<std::vector<ir::InstId>> users_of_;
  std::vector<std::vector<bool>> closure_;  // closure_[a][b]: a ⇝* b
  std::vector<int> dist_entry_;
  std::vector<int> dist_exit_;
  std::vector<ReadWriteSets> sets_;
};

}  // namespace gallium::analysis
