#include "runtime/fault.h"

#include <algorithm>
#include <cstdlib>

#include "util/strings.h"

namespace gallium::runtime {

namespace {

// FNV-1a over the frame body; cheap and adequate for detecting the injected
// bit flips (we are modeling a CRC, not defending against an adversary).
uint64_t Fnv1a(const uint8_t* data, size_t len, uint64_t h = 0xcbf29ce484222325ull) {
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 7; i >= 0; --i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

const char* GreyWindowKindName(GreyWindow::Kind kind) {
  switch (kind) {
    case GreyWindow::Kind::kLatencySpike: return "latency_spike";
    case GreyWindow::Kind::kSlowSwitch: return "slow_switch";
    case GreyWindow::Kind::kAsymmetricLoss: return "asymmetric_loss";
    case GreyWindow::Kind::kBurstLoss: return "burst_loss";
  }
  return "?";
}

std::string FaultPlan::ToString() const {
  std::string s = "FaultPlan{seed=" + std::to_string(seed);
  auto pct = [](double p) { return std::to_string(static_cast<int>(p * 100)); };
  s += " to_server[drop=" + pct(to_server.drop) + "% dup=" +
       pct(to_server.duplicate) + "% reorder=" + pct(to_server.reorder) +
       "% corrupt=" + pct(to_server.corrupt) + "%]";
  s += " to_switch[drop=" + pct(to_switch.drop) + "% dup=" +
       pct(to_switch.duplicate) + "% reorder=" + pct(to_switch.reorder) +
       "% corrupt=" + pct(to_switch.corrupt) + "%]";
  s += " sync[batch_drop=" + pct(sync.batch_drop) + "% ack_drop=" +
       pct(sync.ack_drop) + "% delay=" + pct(sync.delay_prob) + "%]";
  s += " restarts=" + std::to_string(restart_at_packets.size());
  s += " outages=" + std::to_string(outages.size());
  for (const GreyWindow& w : grey_windows) {
    s += std::string(" ") + GreyWindowKindName(w.kind) + "[" +
         std::to_string(w.start) + "," + std::to_string(w.end) + ")";
  }
  s += "}";
  return s;
}

FaultPlan MakeRandomFaultPlan(uint64_t seed, uint64_t num_packets) {
  // Decorrelate consecutive seeds (Rng(1) and Rng(2) share most state bits).
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x7f4a7c15ull);
  FaultPlan plan;
  plan.seed = seed;

  auto channel = [&rng]() {
    ChannelFaults f;
    f.drop = rng.NextDouble() * 0.15;
    f.duplicate = rng.NextDouble() * 0.10;
    f.reorder = rng.NextDouble() * 0.10;
    f.corrupt = rng.NextDouble() * 0.05;
    return f;
  };
  plan.to_server = channel();
  plan.to_switch = channel();

  plan.sync.batch_drop = rng.NextDouble() * 0.20;
  plan.sync.ack_drop = rng.NextDouble() * 0.15;
  plan.sync.delay_prob = rng.NextDouble() * 0.30;
  plan.sync.delay_us_mean = 100.0 + rng.NextDouble() * 300.0;

  // Deterministic coverage: two of every three seeds restart mid-run, one of
  // every four sustains an outage. (Both can land in the same plan.)
  if (num_packets >= 4) {
    if (seed % 3 != 0) {
      const int restarts = 1 + static_cast<int>(seed % 2);
      for (int i = 0; i < restarts; ++i) {
        plan.restart_at_packets.push_back(
            1 + rng.NextBounded(num_packets - 1));
      }
      std::sort(plan.restart_at_packets.begin(),
                plan.restart_at_packets.end());
    }
    if (seed % 4 == 0) {
      const uint64_t len = std::max<uint64_t>(2, num_packets / 7);
      const uint64_t start = 1 + rng.NextBounded(num_packets - len);
      plan.outages.push_back({start, start + len});
    }
  }
  return plan;
}

FaultPlan MakeOverloadFaultPlan(uint64_t seed, uint64_t num_packets) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x94d049bb133111ebull);
  FaultPlan plan;
  plan.seed = seed;

  // Clean-ish data links: overload is a control-plane phenomenon; the point
  // is to grow the sync backlog, not to lose the packets themselves.
  plan.to_server.drop = rng.NextDouble() * 0.02;
  plan.to_switch.drop = rng.NextDouble() * 0.02;

  // Congested control plane: heavy batch/ack loss forces retries, and every
  // retry burns the delivery budget the backlog is waiting on.
  plan.sync.batch_drop = 0.15 + rng.NextDouble() * 0.25;
  plan.sync.ack_drop = 0.10 + rng.NextDouble() * 0.15;
  plan.sync.delay_prob = 0.30 + rng.NextDouble() * 0.40;
  plan.sync.delay_us_mean = 200.0 + rng.NextDouble() * 600.0;

  if (num_packets >= 16) {
    // One or two burst-loss windows: near-total loss on both directions for
    // a short span (~3% of the run each).
    const int bursts = 1 + static_cast<int>(seed % 2);
    for (int i = 0; i < bursts; ++i) {
      GreyWindow w;
      w.kind = GreyWindow::Kind::kBurstLoss;
      const uint64_t len = std::max<uint64_t>(2, num_packets / 32);
      w.start = 1 + rng.NextBounded(num_packets - len);
      w.end = w.start + len;
      w.drop_to_server = 0.85 + rng.NextDouble() * 0.10;
      w.drop_to_switch = w.drop_to_server;
      w.sync_drop = 0.5;
      plan.grey_windows.push_back(w);
    }
    // A sustained asymmetric-loss window on one direction (~10% of the run).
    GreyWindow asym;
    asym.kind = GreyWindow::Kind::kAsymmetricLoss;
    const uint64_t len = std::max<uint64_t>(4, num_packets / 10);
    asym.start = 1 + rng.NextBounded(num_packets - len);
    asym.end = asym.start + len;
    if (seed % 2 == 0) {
      asym.drop_to_switch = 0.4 + rng.NextDouble() * 0.3;
    } else {
      asym.drop_to_server = 0.4 + rng.NextDouble() * 0.3;
    }
    plan.grey_windows.push_back(asym);
  }
  return plan;
}

FaultPlan MakeGreyFailureFaultPlan(uint64_t seed, uint64_t num_packets) {
  Rng rng(seed * 0xbf58476d1ce4e5b9ull + 0x2545f4914f6cdd1dull);
  FaultPlan plan;
  plan.seed = seed;

  // Light base noise so detection has to discriminate, not just threshold
  // on "any fault at all".
  plan.to_server.drop = rng.NextDouble() * 0.03;
  plan.to_switch.drop = rng.NextDouble() * 0.03;
  plan.sync.batch_drop = rng.NextDouble() * 0.05;
  plan.sync.ack_drop = rng.NextDouble() * 0.05;

  if (num_packets >= 16) {
    // Alternating latency-spike and slow-switch windows across the run —
    // the switch keeps answering, so a naive detector flaps on every one.
    const int windows = 2 + static_cast<int>(seed % 3);
    for (int i = 0; i < windows; ++i) {
      GreyWindow w;
      const uint64_t len = std::max<uint64_t>(3, num_packets / 12);
      w.start = 1 + rng.NextBounded(num_packets - len);
      w.end = w.start + len;
      if (i % 2 == 0) {
        w.kind = GreyWindow::Kind::kLatencySpike;
        w.latency_factor = 4.0 + rng.NextDouble() * 8.0;
        w.extra_delay_us = 500.0 + rng.NextDouble() * 1500.0;
      } else {
        w.kind = GreyWindow::Kind::kSlowSwitch;
        w.latency_factor = 2.0 + rng.NextDouble() * 3.0;
        w.extra_delay_us = 200.0 + rng.NextDouble() * 400.0;
        w.probe_miss = 0.3 + rng.NextDouble() * 0.4;
        w.sync_drop = 0.1 + rng.NextDouble() * 0.2;
      }
      plan.grey_windows.push_back(w);
    }
  }
  return plan;
}

Result<FaultPlan> FaultPlanFromSpec(const std::string& spec,
                                    uint64_t num_packets) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    return InvalidArgument("fault-plan spec must be <kind>:<seed>, got '" +
                           spec + "'");
  }
  const std::string kind = spec.substr(0, colon);
  char* end = nullptr;
  const uint64_t seed = std::strtoull(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0') {
    return InvalidArgument("fault-plan seed is not a number in '" + spec + "'");
  }
  if (kind == "random") return MakeRandomFaultPlan(seed, num_packets);
  if (kind == "overload") return MakeOverloadFaultPlan(seed, num_packets);
  if (kind == "grey") return MakeGreyFailureFaultPlan(seed, num_packets);
  return InvalidArgument("unknown fault-plan kind '" + kind +
                         "' (try: random overload grey)");
}

void FaultyChannel::Send(std::vector<uint8_t> frame) {
  ++frames_sent_;
  if (rng_->NextBool(std::min(1.0, faults_.drop + drop_boost_))) {
    ++frames_dropped_;
    // A newer transmission overtaking a lost one still releases the held
    // frame — the reordered copy is in flight regardless of later losses.
    if (held_.has_value()) {
      queue_.push_back(std::move(*held_));
      held_.reset();
    }
    return;
  }
  if (rng_->NextBool(faults_.corrupt) && !frame.empty()) {
    ++frames_corrupted_;
    frame[rng_->NextBounded(frame.size())] ^=
        static_cast<uint8_t>(1 + rng_->NextBounded(255));
  }
  const bool duplicated = rng_->NextBool(faults_.duplicate);
  if (duplicated) ++frames_duplicated_;

  if (!held_.has_value() && rng_->NextBool(faults_.reorder)) {
    ++frames_reordered_;
    held_ = frame;  // keep one copy back; it re-enters behind the next frame
    if (duplicated) queue_.push_back(std::move(frame));
    return;
  }
  queue_.push_back(frame);
  if (duplicated) queue_.push_back(std::move(frame));
  if (held_.has_value()) {
    queue_.push_back(std::move(*held_));
    held_.reset();
  }
}

std::optional<std::vector<uint8_t>> FaultyChannel::Receive() {
  if (queue_.empty()) return std::nullopt;
  std::vector<uint8_t> frame = std::move(queue_.front());
  queue_.pop_front();
  return frame;
}

void FaultyChannel::Drain() {
  if (held_.has_value()) {
    queue_.push_back(std::move(*held_));
    held_.reset();
  }
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan),
      rng_(plan.seed ^ 0xd1b54a32d192ed03ull),
      channel_rng_(plan.seed ^ 0x2545f4914f6cdd1dull),
      to_server_(plan.to_server, &channel_rng_),
      to_switch_(plan.to_switch, &channel_rng_) {}

bool FaultInjector::SwitchDown(uint64_t packet_index) const {
  for (const auto& [start, end] : plan_.outages) {
    if (packet_index >= start && packet_index < end) return true;
  }
  return false;
}

void FaultInjector::BeginPacket(uint64_t packet_index) {
  grey_active_ = false;
  grey_latency_factor_ = 1.0;
  grey_extra_delay_us_ = 0.0;
  grey_probe_miss_ = 0.0;
  grey_sync_drop_ = 0.0;
  double boost_to_server = 0.0, boost_to_switch = 0.0;
  for (const GreyWindow& w : plan_.grey_windows) {
    if (!w.Active(packet_index)) continue;
    grey_active_ = true;
    grey_latency_factor_ = std::max(grey_latency_factor_, w.latency_factor);
    grey_extra_delay_us_ += w.extra_delay_us;
    grey_probe_miss_ = std::min(1.0, grey_probe_miss_ + w.probe_miss);
    grey_sync_drop_ = std::min(1.0, grey_sync_drop_ + w.sync_drop);
    boost_to_server += w.drop_to_server;
    boost_to_switch += w.drop_to_switch;
  }
  to_server_.set_drop_boost(boost_to_server);
  to_switch_.set_drop_boost(boost_to_switch);
}

bool FaultInjector::TakeRestart(uint64_t packet_index) {
  bool fired = false;
  while (next_restart_ < plan_.restart_at_packets.size() &&
         plan_.restart_at_packets[next_restart_] <= packet_index) {
    ++next_restart_;
    fired = true;
  }
  return fired;
}

std::vector<uint8_t> EncodeDataFrame(uint64_t seq,
                                     const std::vector<uint8_t>& wire) {
  std::vector<uint8_t> frame;
  frame.reserve(16 + wire.size());
  PutU64(&frame, seq);
  uint64_t h = Fnv1a(frame.data(), 8);
  h = Fnv1a(wire.data(), wire.size(), h);
  PutU64(&frame, h);
  frame.insert(frame.end(), wire.begin(), wire.end());
  return frame;
}

bool DecodeDataFrame(const std::vector<uint8_t>& frame, uint64_t* seq,
                     std::vector<uint8_t>* wire) {
  if (frame.size() < 16) return false;
  uint64_t h = Fnv1a(frame.data(), 8);
  h = Fnv1a(frame.data() + 16, frame.size() - 16, h);
  if (h != GetU64(frame.data() + 8)) return false;
  *seq = GetU64(frame.data());
  wire->assign(frame.begin() + 16, frame.end());
  return true;
}

}  // namespace gallium::runtime
