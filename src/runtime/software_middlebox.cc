#include "runtime/software_middlebox.h"

namespace gallium::runtime {

void ApplyStateInit(const mbox::MiddleboxSpec& spec, HostStateStore* store) {
  for (const auto& [map_index, entries] : spec.init.maps) {
    for (const auto& entry : entries) {
      store->MapInsert(map_index, entry.key, entry.value);
    }
  }
  for (const auto& [vec_index, values] : spec.init.vectors) {
    store->vector_contents(vec_index) = values;
  }
}

SoftwareMiddlebox::SoftwareMiddlebox(const mbox::MiddleboxSpec& spec)
    : fn_(spec.fn.get()), interp_(*spec.fn), state_(*spec.fn) {
  ApplyStateInit(spec, &state_);
}

SoftwareMiddlebox::Outcome SoftwareMiddlebox::Process(net::Packet& pkt,
                                                      uint64_t now_ms) {
  Outcome outcome;
  ExecResult result = interp_.Run(pkt, state_, now_ms);
  outcome.status = result.status;
  outcome.verdict = result.verdict;
  outcome.stats = result.stats;
  return outcome;
}

}  // namespace gallium::runtime
