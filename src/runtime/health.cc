#include "runtime/health.h"

#include "telemetry/flight_recorder.h"

namespace gallium::runtime {

const char* HealthWatchdog::ModeName(Mode mode) {
  switch (mode) {
    case Mode::kOffloaded: return "offloaded";
    case Mode::kDegraded: return "degraded";
    case Mode::kResyncPending: return "resync_pending";
  }
  return "?";
}

bool HealthWatchdog::OnPacket() {
  ++packets_in_mode_;
  ++packets_since_probe_;
  const uint64_t interval =
      mode_ == Mode::kOffloaded ? options_.probe_interval_packets : 1;
  if (packets_since_probe_ < interval) return false;
  packets_since_probe_ = 0;
  ++probes_sent_;
  return true;
}

void HealthWatchdog::RecordObservation(bool success, double latency_us) {
  if (success) {
    consecutive_misses_ = 0;
    ++consecutive_successes_;
    if (!ewma_primed_) {
      ewma_us_ = latency_us;
      ewma_primed_ = true;
    } else {
      ewma_us_ = options_.ewma_alpha * latency_us +
                 (1.0 - options_.ewma_alpha) * ewma_us_;
    }
  } else {
    consecutive_successes_ = 0;
    ++consecutive_misses_;
    ++probes_missed_;
    // Record the first miss of a run and the threshold crossing — not every
    // miss of a long outage, which would just wrap the lane with noise.
    if (options_.recorder != nullptr &&
        (consecutive_misses_ == 1 ||
         consecutive_misses_ == options_.miss_enter_threshold)) {
      options_.recorder->Record(
          options_.flight_lane, telemetry::EventId::kProbeMiss,
          static_cast<uint64_t>(consecutive_misses_),
          static_cast<uint64_t>(ewma_us_));
    }
    // A miss is worst-case latency evidence: pull the EWMA toward the entry
    // threshold so sustained loss trips the detector even when the few
    // answered probes are fast.
    const double penalty = options_.latency_enter_us * 2.0;
    ewma_us_ = ewma_primed_
                   ? options_.ewma_alpha * penalty +
                         (1.0 - options_.ewma_alpha) * ewma_us_
                   : penalty;
    ewma_primed_ = true;
  }

  switch (mode_) {
    case Mode::kOffloaded: {
      const bool unhealthy =
          consecutive_misses_ >= options_.miss_enter_threshold ||
          ewma_us_ >= options_.latency_enter_us;
      if (unhealthy && DwellElapsed()) SwitchMode(Mode::kDegraded);
      break;
    }
    case Mode::kDegraded: {
      const bool healthy =
          consecutive_successes_ >= options_.ok_exit_threshold &&
          ewma_us_ <= options_.latency_exit_us;
      if (healthy && DwellElapsed()) SwitchMode(Mode::kResyncPending);
      break;
    }
    case Mode::kResyncPending:
      // If health collapses again while the rebuild is still pending, fall
      // straight back — resyncing against a sick switch wastes the snapshot.
      if (consecutive_misses_ >= options_.miss_enter_threshold) {
        SwitchMode(Mode::kDegraded);
      }
      break;
  }
}

void HealthWatchdog::NotifyResynced() {
  if (mode_ == Mode::kResyncPending) SwitchMode(Mode::kOffloaded);
}

void HealthWatchdog::SwitchMode(Mode next) {
  const Mode from = mode_;
  mode_ = next;
  packets_in_mode_ = 0;
  packets_since_probe_ = 0;
  ++transitions_;
  if (options_.recorder != nullptr) {
    options_.recorder->Record(options_.flight_lane,
                              telemetry::EventId::kWatchdogModeChange,
                              static_cast<uint64_t>(from),
                              static_cast<uint64_t>(next), transitions_);
  }
}

}  // namespace gallium::runtime
