#include "runtime/sync_queue.h"

#include <algorithm>

namespace gallium::runtime {

void CoalescingSyncQueue::Enqueue(const std::vector<MapMutation>& maps,
                                  const std::vector<GlobalMutation>& globals) {
  for (const MapMutation& m : maps) {
    auto key = std::make_pair(m.map, m.key);
    auto it = pending_maps_.find(key);
    if (it == pending_maps_.end()) {
      pending_maps_.emplace(std::move(key), std::make_pair(next_rank_++, m));
    } else {
      // Last-writer-wins: the queued mutation to this key is superseded.
      // The arrival rank is kept — per-key ordering collapses to "the final
      // value", which is the only thing the switch ever needed to see.
      it->second.second = m;
      ++coalesced_mutations_;
    }
  }
  for (const GlobalMutation& g : globals) {
    auto it = pending_globals_.find(g.global);
    if (it == pending_globals_.end()) {
      pending_globals_.emplace(g.global, std::make_pair(next_rank_++, g));
    } else {
      it->second.second = g;
      ++coalesced_mutations_;
    }
  }
  ++enqueued_batches_;
  enqueued_mutations_ += maps.size() + globals.size();
  ++depth_;
  peak_depth_ = std::max(peak_depth_, depth_);
}

void CoalescingSyncQueue::DrainInto(std::vector<MapMutation>* maps,
                                    std::vector<GlobalMutation>* globals) {
  maps->clear();
  globals->clear();
  std::vector<std::pair<uint64_t, MapMutation>> ordered_maps;
  ordered_maps.reserve(pending_maps_.size());
  for (auto& [key, ranked] : pending_maps_) {
    ordered_maps.push_back(std::move(ranked));
  }
  std::sort(ordered_maps.begin(), ordered_maps.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  maps->reserve(ordered_maps.size());
  for (auto& [rank, m] : ordered_maps) maps->push_back(std::move(m));

  std::vector<std::pair<uint64_t, GlobalMutation>> ordered_globals;
  ordered_globals.reserve(pending_globals_.size());
  for (auto& [idx, ranked] : pending_globals_) {
    ordered_globals.push_back(ranked);
  }
  std::sort(ordered_globals.begin(), ordered_globals.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  globals->reserve(ordered_globals.size());
  for (auto& [rank, g] : ordered_globals) globals->push_back(g);

  pending_maps_.clear();
  pending_globals_.clear();
  drained_batches_ += depth_;
  depth_ = 0;
}

void CoalescingSyncQueue::ClearForResync() {
  cleared_mutations_ += pending_maps_.size() + pending_globals_.size();
  pending_maps_.clear();
  pending_globals_.clear();
  depth_ = 0;
}

}  // namespace gallium::runtime
