#include "runtime/sync_queue.h"

#include <algorithm>

#include "util/hash.h"

namespace gallium::runtime {

namespace {
constexpr uint64_t kMinIndexSlots = 256;  // power of two
}  // namespace

uint64_t CoalescingSyncQueue::HashOf(ir::StateIndex map,
                                     const StateKey& key) const {
  // Fold the map index into the seed so the same flow key queued under two
  // maps (flows + creation times) lands in different probe sequences.
  return HashWords(key.data(), key.size(),
                   0x9e3779b97f4a7c15ull ^ (0x100000001b3ull * (map + 1)));
}

uint64_t* CoalescingSyncQueue::FindIndexSlot(uint64_t hash, ir::StateIndex map,
                                             const StateKey& key) {
  const uint64_t mask = map_index_.size() - 1;
  uint64_t slot = hash & mask;
  for (;;) {
    uint64_t pos = map_index_[slot];
    if (pos == 0) return &map_index_[slot];
    const PendingMap& p = pending_maps_[pos - 1];
    if (p.hash == hash && p.mutation.map == map && p.mutation.key == key) {
      return &map_index_[slot];
    }
    slot = (slot + 1) & mask;
  }
}

void CoalescingSyncQueue::GrowIndex() {
  const uint64_t target =
      std::max<uint64_t>(kMinIndexSlots, map_index_.size() * 2);
  map_index_.assign(target, 0);
  const uint64_t mask = target - 1;
  for (uint64_t pos = 0; pos < pending_maps_.size(); ++pos) {
    uint64_t slot = pending_maps_[pos].hash & mask;
    while (map_index_[slot] != 0) slot = (slot + 1) & mask;
    map_index_[slot] = pos + 1;
  }
}

void CoalescingSyncQueue::Enqueue(const std::vector<MapMutation>& maps,
                                  const std::vector<GlobalMutation>& globals) {
  for (const MapMutation& m : maps) {
    // Keep the index under ~70% load (linear probing stays short).
    if ((pending_maps_.size() + 1) * 10 >= map_index_.size() * 7) GrowIndex();
    const uint64_t hash = HashOf(m.map, m.key);
    uint64_t* slot = FindIndexSlot(hash, m.map, m.key);
    if (*slot == 0) {
      pending_maps_.push_back(PendingMap{hash, m});
      *slot = pending_maps_.size();
    } else {
      // Last-writer-wins: the queued mutation to this key is superseded.
      // The arrival slot is kept — per-key ordering collapses to "the final
      // value", which is the only thing the switch ever needed to see.
      pending_maps_[*slot - 1].mutation = m;
      ++coalesced_mutations_;
    }
  }
  for (const GlobalMutation& g : globals) {
    if (g.global >= global_slot_.size()) global_slot_.resize(g.global + 1, 0);
    uint32_t& pos = global_slot_[g.global];
    if (pos == 0) {
      pending_globals_.push_back(g);
      pos = static_cast<uint32_t>(pending_globals_.size());
    } else {
      pending_globals_[pos - 1] = g;
      ++coalesced_mutations_;
    }
  }
  ++enqueued_batches_;
  enqueued_mutations_ += maps.size() + globals.size();
  ++depth_;
  peak_depth_ = std::max(peak_depth_, depth_);
}

void CoalescingSyncQueue::DrainInto(std::vector<MapMutation>* maps,
                                    std::vector<GlobalMutation>* globals) {
  maps->clear();
  globals->clear();
  // The dense vectors already hold the batch in first-touch order.
  maps->reserve(pending_maps_.size());
  for (PendingMap& p : pending_maps_) maps->push_back(std::move(p.mutation));
  *globals = pending_globals_;

  // clear() keeps the vector/index capacity — draining at steady state
  // costs zero allocations on the next fill.
  pending_maps_.clear();
  std::fill(map_index_.begin(), map_index_.end(), 0);
  pending_globals_.clear();
  std::fill(global_slot_.begin(), global_slot_.end(), 0);
  drained_batches_ += depth_;
  depth_ = 0;
}

void CoalescingSyncQueue::ClearForResync() {
  cleared_mutations_ += pending_maps_.size() + pending_globals_.size();
  pending_maps_.clear();
  std::fill(map_index_.begin(), map_index_.end(), 0);
  pending_globals_.clear();
  std::fill(global_slot_.begin(), global_slot_.end(), 0);
  depth_ = 0;
}

}  // namespace gallium::runtime
