// Hardened switch<->server state synchronization (§4.3.2–4.3.3 under an
// imperfect control channel).
//
// The paper's write-back protocol makes one batch atomic *on the switch*;
// this header adds the machinery that makes the channel itself survivable:
// every control-plane update travels as a sequence-numbered SyncBatch tagged
// with the switch epoch the server believes it is talking to. The switch
// applies a batch at most once (seq <= last_applied is acked as a duplicate
// without re-applying), and rejects batches from a stale epoch so the server
// learns that the switch restarted and must be resynchronized from the
// authoritative host store.
//
// The server side retries un-acked batches with bounded exponential backoff
// (SyncPolicy); a lost ack therefore produces a duplicate delivery, which the
// seq check turns into an idempotent no-op — together: exactly-once apply.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/state.h"

namespace gallium::runtime {

// One control-plane update: the replicated-state mutations of a single
// packet (or maintenance pass), applied atomically via the write-back
// tables.
struct SyncBatch {
  // Monotonically increasing per server; never reused, even across switch
  // restarts (the epoch disambiguates).
  uint64_t seq = 0;
  // The switch incarnation this batch was built against. A batch whose
  // epoch does not match the switch's current epoch is rejected: the state
  // it assumes was lost in a restart and a full resync must happen first.
  uint64_t epoch = 0;
  std::vector<RecordingStateBackend::MapMutation> maps;
  std::vector<RecordingStateBackend::GlobalMutation> globals;
};

// The switch's reply to a SyncBatch.
struct SyncAck {
  bool epoch_ok = false;   // false: batch was built against a dead epoch
  bool applied = false;    // true: this delivery performed the mutations
  bool duplicate = false;  // true: seq already applied; acked idempotently
  uint64_t switch_epoch = 0;
  double latency_us = 0;   // modeled control-plane latency of this delivery
};

// Retry/backoff policy for the reliable sync client and the framed data
// link. Defaults mirror perf::CostModel's control-plane surface so the
// analytical model and the simulated runtime agree.
struct SyncPolicy {
  double timeout_us = 500.0;       // initial retransmit timeout
  double backoff_factor = 2.0;     // exponential backoff multiplier
  double max_backoff_us = 8000.0;  // backoff ceiling
  int max_sync_attempts = 10;      // per batch, before declaring switch down
  int max_data_attempts = 100;     // per data frame on the switch<->server link
};

}  // namespace gallium::runtime
