#include "runtime/offloaded_middlebox.h"

#include <cassert>
#include <set>

namespace gallium::runtime {

using partition::Part;
using partition::StatePlacement;

OffloadedMiddlebox::OffloadedMiddlebox(const mbox::MiddleboxSpec& spec,
                                       partition::PartitionPlan plan,
                                       OffloadedOptions options)
    : fn_(spec.fn.get()),
      plan_(std::move(plan)),
      options_(options),
      interp_(*spec.fn),
      server_state_(*spec.fn),
      replicated_maps_(spec.fn->maps().size(), false),
      replicated_globals_(spec.fn->globals().size(), false),
      rng_(options.rng_seed) {
  for (const auto& [ref, placement] : plan_.state_placement) {
    if (placement != StatePlacement::kReplicated) continue;
    if (ref.kind == ir::StateRef::Kind::kMap) {
      replicated_maps_[ref.index] = true;
    } else if (ref.kind == ir::StateRef::Kind::kGlobal) {
      replicated_globals_[ref.index] = true;
    }
  }
}

Result<std::unique_ptr<OffloadedMiddlebox>> OffloadedMiddlebox::Create(
    const mbox::MiddleboxSpec& spec, OffloadedOptions options) {
  partition::Partitioner partitioner(*spec.fn, options.constraints);
  GALLIUM_ASSIGN_OR_RETURN(partition::PartitionPlan plan, partitioner.Run());
  if (plan.to_server.cond_regs.size() > 32 ||
      plan.to_switch.cond_regs.size() > 32) {
    return Unsupported("more than 32 transferred branch conditions");
  }

  if (options.cache_entries_per_table > 0) {
    // Cache-miss recovery replays the whole pre partition on the server, so
    // no pre statement may write state the server cannot see (switch-only
    // writes would double-apply / diverge). Maps are never written from the
    // data plane; the only hazard is a switch-resident global write.
    for (const auto& [ref, placement] : plan.state_placement) {
      if (ref.kind != ir::StateRef::Kind::kGlobal) continue;
      if (placement != partition::StatePlacement::kSwitchOnly) continue;
      return Unsupported(
          "cache mode requires all written globals to be server-visible; '" +
          spec.fn->global(ref.index).name + "' is switch-only");
    }
  }

  auto mbx = std::unique_ptr<OffloadedMiddlebox>(
      new OffloadedMiddlebox(spec, std::move(plan), options));
  GALLIUM_ASSIGN_OR_RETURN(
      mbx->switch_, switchsim::Switch::Create(*spec.fn, mbx->plan_,
                                              options.constraints,
                                              options.cache_entries_per_table));
  mbx->cached_maps_.assign(spec.fn->maps().size(), false);
  for (ir::StateIndex m = 0; m < spec.fn->maps().size(); ++m) {
    mbx->cached_maps_[m] = mbx->switch_->IsCachedMap(m);
  }
  GALLIUM_RETURN_IF_ERROR(mbx->InitializeState(spec));
  return mbx;
}

Status OffloadedMiddlebox::InitializeState(const mbox::MiddleboxSpec& spec) {
  // Server holds the authoritative copy of everything; switch-resident
  // state is additionally installed into tables/registers.
  ApplyStateInit(spec, &server_state_);
  for (const auto& [map_index, entries] : spec.init.maps) {
    for (const auto& entry : entries) {
      GALLIUM_RETURN_IF_ERROR(
          switch_->PopulateMap(map_index, entry.key, entry.value));
    }
  }
  for (const auto& [vec_index, values] : spec.init.vectors) {
    GALLIUM_RETURN_IF_ERROR(switch_->PopulateVector(vec_index, values));
  }
  return Status::Ok();
}

OffloadedMiddlebox::Outcome OffloadedMiddlebox::Process(net::Packet pkt,
                                                        uint64_t now_ms) {
  Outcome outcome;
  ++packets_total_;

  const bool cache_mode = options_.cache_entries_per_table > 0;
  // In cache mode the pre pass may turn out to be non-authoritative; keep a
  // pristine copy so the server can reprocess from scratch.
  net::Packet pristine;
  if (cache_mode) pristine = pkt;

  // --- 1. Switch: pre-processing pass ---------------------------------------
  ExecResult pre = interp_.RunPartition(pkt, switch_->data_plane(), now_ms,
                                        plan_, Part::kPre,
                                        /*in_spec=*/nullptr,
                                        /*in_values=*/nullptr,
                                        &plan_.to_server,
                                        cache_mode ? &cached_maps_ : nullptr);
  if (!pre.status.ok()) {
    outcome.status = pre.status;
    return outcome;
  }
  if (pre.cache_miss_abort) {
    ++cache_misses_;
    Outcome miss_outcome = ProcessCacheMiss(std::move(pristine), now_ms);
    miss_outcome.switch_stats += pre.stats;  // the aborted pre attempt
    return miss_outcome;
  }
  outcome.switch_stats += pre.stats;

  if (!pre.needs_server) {
    // Fast path: the switch completed the packet by itself.
    if (!pre.verdict.decided()) {
      outcome.status = Internal("pre pass finished without a verdict");
      return outcome;
    }
    ++packets_fast_;
    outcome.fast_path = true;
    outcome.verdict = pre.verdict;
    if (pre.verdict.kind == Verdict::Kind::kSend) {
      outcome.out_packet = std::move(pkt);
    }
    return outcome;
  }
  if (pre.verdict.decided()) {
    outcome.status = Internal(
        "pre pass produced a verdict on a path that still owes server work");
    return outcome;
  }

  // --- 2. Wire: switch -> server with the synthesized header ------------------
  net::GalliumHeader header1 = PackTransfer(*fn_, plan_.to_server,
                                            pre.transfer_out);
  outcome.transfer_bytes_to_server = static_cast<int>(header1.WireSize());
  net::Packet server_pkt = std::move(pkt);
  server_pkt.set_gallium(std::move(header1));
  if (options_.serialize_wire) {
    const std::vector<uint8_t> wire = server_pkt.Serialize();
    const uint32_t ingress = server_pkt.ingress_port();
    auto parsed = net::Packet::Parse(wire);
    if (!parsed.ok()) {
      outcome.status = parsed.status();
      return outcome;
    }
    server_pkt = std::move(parsed).value();
    server_pkt.set_ingress_port(ingress);
  }
  auto in_values1 =
      UnpackTransfer(*fn_, plan_.to_server, server_pkt.gallium());
  if (!in_values1.ok()) {
    outcome.status = in_values1.status();
    return outcome;
  }
  server_pkt.clear_gallium();

  // --- 3. Server: non-offloaded pass with replicated-state recording ----------
  RecordingStateBackend recording(&server_state_, replicated_maps_,
                                  replicated_globals_);
  ExecResult srv = interp_.RunPartition(server_pkt, recording, now_ms, plan_,
                                        Part::kNonOffloaded, &plan_.to_server,
                                        &in_values1.value(), &plan_.to_switch);
  if (!srv.status.ok()) {
    outcome.status = srv.status;
    return outcome;
  }
  outcome.server_stats += srv.stats;

  // Atomic update + output commit: the packet is held until every
  // replicated-state mutation is visible on the switch (§4.3.3).
  if (recording.HasMutations()) {
    auto latency = switch_->ApplyAtomicUpdate(recording.map_mutations(),
                                              recording.global_mutations(),
                                              &rng_);
    if (!latency.ok()) {
      outcome.status = latency.status();
      return outcome;
    }
    outcome.state_synced = true;
    outcome.sync_latency_us = *latency;
  }

  // --- 4. Wire: server -> switch, then the post-processing pass ----------------
  net::GalliumHeader header2 = PackTransfer(*fn_, plan_.to_switch,
                                            srv.transfer_out);
  outcome.transfer_bytes_to_switch = static_cast<int>(header2.WireSize());
  net::Packet back_pkt = std::move(server_pkt);
  back_pkt.set_gallium(std::move(header2));
  if (options_.serialize_wire) {
    const std::vector<uint8_t> wire = back_pkt.Serialize();
    const uint32_t ingress = back_pkt.ingress_port();
    auto parsed = net::Packet::Parse(wire);
    if (!parsed.ok()) {
      outcome.status = parsed.status();
      return outcome;
    }
    back_pkt = std::move(parsed).value();
    back_pkt.set_ingress_port(ingress);
  }
  auto in_values2 = UnpackTransfer(*fn_, plan_.to_switch, back_pkt.gallium());
  if (!in_values2.ok()) {
    outcome.status = in_values2.status();
    return outcome;
  }
  back_pkt.clear_gallium();

  ExecResult post = interp_.RunPartition(back_pkt, switch_->data_plane(),
                                         now_ms, plan_, Part::kPost,
                                         &plan_.to_switch, &in_values2.value(),
                                         /*out_spec=*/nullptr);
  if (!post.status.ok()) {
    outcome.status = post.status;
    return outcome;
  }
  outcome.switch_stats += post.stats;

  // Verdict resolution: exactly one of the server / post passes decides.
  if (srv.verdict.decided() == post.verdict.decided()) {
    outcome.status = Internal(
        srv.verdict.decided() ? "both server and post pass produced a verdict"
                              : "no pass produced a verdict");
    return outcome;
  }
  outcome.verdict = srv.verdict.decided() ? srv.verdict : post.verdict;
  if (outcome.verdict.kind == Verdict::Kind::kSend) {
    outcome.out_packet = std::move(back_pkt);
  }
  return outcome;
}

OffloadedMiddlebox::Outcome OffloadedMiddlebox::ProcessCacheMiss(
    net::Packet pkt, uint64_t now_ms) {
  Outcome outcome;
  // The switch forwards the pristine packet to the server (§7: "for any
  // packet that the programmable switch does not know how to handle, the
  // middlebox server handles it instead"). The server runs everything but
  // the post partition against its authoritative state.
  RecordingStateBackend recording(&server_state_, replicated_maps_,
                                  replicated_globals_);
  ExecResult srv = interp_.RunServerFull(pkt, recording, now_ms, plan_,
                                         &plan_.to_switch, cached_maps_);
  if (!srv.status.ok()) {
    outcome.status = srv.status;
    return outcome;
  }
  outcome.server_stats += srv.stats;

  // Build one atomic batch: the packet's replicated-state mutations plus a
  // cache refresh for every (still-present) key the packet looked up.
  std::vector<RecordingStateBackend::MapMutation> mutations =
      recording.map_mutations();
  std::set<std::pair<ir::StateIndex, StateKey>> seen;
  for (const auto& [map, key] : srv.cached_lookups) {
    if (!seen.insert({map, key}).second) continue;
    StateValue value;
    if (server_state_.MapLookup(map, key, &value)) {
      mutations.push_back(
          RecordingStateBackend::MapMutation{map, key, value, false});
    }
  }
  if (!mutations.empty() || !recording.global_mutations().empty()) {
    auto latency = switch_->ApplyAtomicUpdate(
        mutations, recording.global_mutations(), &rng_);
    if (!latency.ok()) {
      outcome.status = latency.status();
      return outcome;
    }
    // Output commit applies only to the packet's own state updates; pure
    // cache refreshes do not hold the packet.
    if (recording.HasMutations()) {
      outcome.state_synced = true;
      outcome.sync_latency_us = *latency;
    }
  }

  // Post pass on the switch, as usual.
  net::GalliumHeader header2 =
      PackTransfer(*fn_, plan_.to_switch, srv.transfer_out);
  outcome.transfer_bytes_to_switch = static_cast<int>(header2.WireSize());
  auto in_values2 = UnpackTransfer(*fn_, plan_.to_switch, header2);
  if (!in_values2.ok()) {
    outcome.status = in_values2.status();
    return outcome;
  }
  ExecResult post = interp_.RunPartition(pkt, switch_->data_plane(), now_ms,
                                         plan_, Part::kPost,
                                         &plan_.to_switch, &in_values2.value(),
                                         /*out_spec=*/nullptr);
  if (!post.status.ok()) {
    outcome.status = post.status;
    return outcome;
  }
  outcome.switch_stats += post.stats;

  if (srv.verdict.decided() == post.verdict.decided()) {
    outcome.status = Internal(
        srv.verdict.decided()
            ? "both server-full and post pass produced a verdict"
            : "no pass produced a verdict after cache miss");
    return outcome;
  }
  outcome.verdict = srv.verdict.decided() ? srv.verdict : post.verdict;
  if (outcome.verdict.kind == Verdict::Kind::kSend) {
    outcome.out_packet = std::move(pkt);
  }
  return outcome;
}

Result<int> OffloadedMiddlebox::CollectIdleFlows(ir::StateIndex flows_map,
                                                 ir::StateIndex created_map,
                                                 uint64_t now_ms,
                                                 uint64_t timeout_ms) {
  std::vector<StateKey> expired;
  for (const auto& [key, value] : server_state_.map_contents(created_map)) {
    if (!value.empty() && now_ms - value[0] >= timeout_ms) {
      expired.push_back(key);
    }
  }
  if (expired.empty()) return 0;

  std::vector<RecordingStateBackend::MapMutation> mutations;
  for (const StateKey& key : expired) {
    server_state_.MapErase(flows_map, key);
    server_state_.MapErase(created_map, key);
    mutations.push_back(
        RecordingStateBackend::MapMutation{flows_map, key, {}, true});
  }
  GALLIUM_ASSIGN_OR_RETURN(double latency,
                           switch_->ApplyAtomicUpdate(mutations, {}, &rng_));
  (void)latency;
  return static_cast<int>(expired.size());
}

}  // namespace gallium::runtime
