#include "runtime/offloaded_middlebox.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace gallium::runtime {

using partition::Part;
using partition::StatePlacement;

OffloadedMiddlebox::OffloadedMiddlebox(const mbox::MiddleboxSpec& spec,
                                       partition::PartitionPlan plan,
                                       OffloadedOptions options)
    : fn_(spec.fn.get()),
      plan_(std::move(plan)),
      options_(options),
      interp_(*spec.fn),
      server_state_(*spec.fn, options.flow_capacity),
      replicated_maps_(spec.fn->maps().size(), false),
      replicated_globals_(spec.fn->globals().size(), false),
      rng_(options.rng_seed) {
  if (options_.registry != nullptr) {
    registry_ = options_.registry;
  } else {
    owned_registry_ = std::make_unique<telemetry::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  scope_ = telemetry::LabelSet{{"mbox", spec.name}};
  for (const auto& label : options_.extra_labels) scope_.push_back(label);
  const telemetry::LabelSet& scope = scope_;
  auto counter = [&](const char* name, const char* help) {
    return registry_->GetCounter(name, scope, help);
  };
  c_.packets_total =
      counter("gallium_packets_total", "packets entering the pipeline");
  c_.packets_fast = counter("gallium_packets_fast_path_total",
                            "packets completed by the switch alone");
  c_.cache_misses = counter("gallium_cache_miss_aborts_total",
                            "pre passes aborted on a cache miss (S7 mode)");
  c_.sync_batches_sent =
      counter("gallium_sync_batches_total", "state-sync batches sent");
  c_.sync_retries =
      counter("gallium_sync_retries_total", "sync deliveries retransmitted");
  c_.batches_dropped =
      counter("gallium_sync_batch_drops_total", "sync batches lost in flight");
  c_.acks_dropped =
      counter("gallium_sync_ack_drops_total", "sync acks lost in flight");
  c_.sync_failures = counter("gallium_sync_failures_total",
                             "sync batches abandoned after all retries");
  c_.switch_restarts = counter("gallium_switch_restarts_total",
                               "switch restarts observed by the server");
  c_.degraded_packets = counter("gallium_degraded_packets_total",
                                "packets served software-only (switch down)");
  c_.data_retries = counter("gallium_data_retries_total",
                            "data-link frames retransmitted");
  c_.resyncs =
      counter("gallium_resyncs_total", "full switch-state rebuilds from host");
  c_.packets_shed =
      counter("gallium_packets_shed_total",
              "packets refused at ingress with the backlog at its bound");
  c_.backpressure_events =
      counter("gallium_sync_backpressure_total",
              "packets that blocked on an inline backlog drain at the bound");
  c_.backlog_pumps = counter("gallium_sync_backlog_pumps_total",
                             "coalesced backlog batches delivered");
  c_.probe_misses = counter("gallium_probe_misses_total",
                            "heartbeat probes lost or unanswered");
  c_.unwatched_fallbacks =
      counter("gallium_unwatched_fallbacks_total",
              "per-packet degraded fallbacks before the watchdog caught up");
  c_.sync_latency_us = registry_->GetHistogram(
      "gallium_sync_latency_us", scope, telemetry::DefaultLatencyBucketsUs(),
      "output-commit wait per committed sync batch");
  c_.resync_latency_us = registry_->GetHistogram(
      "gallium_resync_latency_us", scope, telemetry::DefaultLatencyBucketsUs(),
      "control-plane latency per full resync");
  telemetry::LabelSet switch_scope = scope, server_scope = scope;
  switch_scope.push_back({"where", "switch"});
  server_scope.push_back({"where", "server"});
  switch_ops_ = telemetry::OpCountsRecorder(registry_, "gallium_ops_total",
                                            std::move(switch_scope));
  server_ops_ = telemetry::OpCountsRecorder(registry_, "gallium_ops_total",
                                            std::move(server_scope));
  for (const auto& [ref, placement] : plan_.state_placement) {
    if (ref.kind == ir::StateRef::Kind::kGlobal &&
        placement == StatePlacement::kSwitchOnly) {
      switch_only_globals_.push_back(ref.index);
    }
    if (placement != StatePlacement::kReplicated) continue;
    if (ref.kind == ir::StateRef::Kind::kMap) {
      replicated_maps_[ref.index] = true;
    } else if (ref.kind == ir::StateRef::Kind::kGlobal) {
      replicated_globals_[ref.index] = true;
    }
  }
  recording_.emplace(&server_state_, replicated_maps_, replicated_globals_);
  if (options_.fault_plan != nullptr) {
    injector_ = std::make_unique<FaultInjector>(*options_.fault_plan);
  }
  flight_ = options_.flight != nullptr ? options_.flight
                                       : &telemetry::FlightRecorder::Default();
  flight_lane_ = options_.flight_lane;
  if (options_.health.enabled) {
    // The watchdog records its own mode-change / probe-miss events on this
    // instance's lane.
    options_.health.recorder = flight_;
    options_.health.flight_lane = flight_lane_;
    watchdog_ = std::make_unique<HealthWatchdog>(options_.health);
  }
  // Exact-match host maps get per-map instruments scoped {mbox,...,map} and
  // record resize/stash/sweep transitions on this instance's lane.
  for (ir::StateIndex m = 0; m < fn_->maps().size(); ++m) {
    state::FlowTable* table = server_state_.flow_table(m);
    if (table == nullptr) continue;
    telemetry::LabelSet labels = scope_;
    labels.push_back({"map", fn_->maps()[m].name});
    table->AttachTelemetry(registry_, labels, flight_, flight_lane_);
  }
}

Result<std::unique_ptr<OffloadedMiddlebox>> OffloadedMiddlebox::Create(
    const mbox::MiddleboxSpec& spec, OffloadedOptions options) {
  // Partition against the concrete RMT target, not just the aggregate
  // proxies: if the tables do not place into stages, the feedback loop
  // spills state back to the server until they do.
  const rmt::RmtTargetModel target =
      options.rmt_target.has_value()
          ? *options.rmt_target
          : rmt::DefaultTofinoProfile(options.constraints);
  GALLIUM_ASSIGN_OR_RETURN(
      rmt::OffloadPlanResult planned,
      rmt::PartitionAndPlace(*spec.fn, options.constraints, target));
  partition::PartitionPlan plan = std::move(planned.plan);
  if (plan.to_server.cond_regs.size() > 32 ||
      plan.to_switch.cond_regs.size() > 32) {
    return Unsupported("more than 32 transferred branch conditions");
  }

  if (options.cache_entries_per_table > 0) {
    // Cache-miss recovery replays the whole pre partition on the server, so
    // no pre statement may write state the server cannot see (switch-only
    // writes would double-apply / diverge). Maps are never written from the
    // data plane; the only hazard is a switch-resident global write.
    for (const auto& [ref, placement] : plan.state_placement) {
      if (ref.kind != ir::StateRef::Kind::kGlobal) continue;
      if (placement != partition::StatePlacement::kSwitchOnly) continue;
      return Unsupported(
          "cache mode requires all written globals to be server-visible; '" +
          spec.fn->global(ref.index).name + "' is switch-only");
    }
  }

  auto mbx = std::unique_ptr<OffloadedMiddlebox>(
      new OffloadedMiddlebox(spec, std::move(plan), options));
  mbx->placement_ = std::move(planned.placement);
  mbx->spilled_ = std::move(planned.spilled);
  mbx->partition_rounds_ = planned.rounds;
  GALLIUM_ASSIGN_OR_RETURN(
      mbx->switch_, switchsim::Switch::Create(*spec.fn, mbx->plan_,
                                              options.constraints,
                                              options.cache_entries_per_table));
  mbx->switch_->SetPlacement(mbx->placement_);
  mbx->known_epoch_ = mbx->switch_->epoch();
  mbx->cached_maps_.assign(spec.fn->maps().size(), false);
  for (ir::StateIndex m = 0; m < spec.fn->maps().size(); ++m) {
    mbx->cached_maps_[m] = mbx->switch_->IsCachedMap(m);
  }
  GALLIUM_RETURN_IF_ERROR(mbx->InitializeState(spec));
  return mbx;
}

Status OffloadedMiddlebox::InitializeState(const mbox::MiddleboxSpec& spec) {
  // Server holds the authoritative copy of everything; switch-resident
  // state is additionally installed into tables/registers.
  ApplyStateInit(spec, &server_state_);
  for (const auto& [map_index, entries] : spec.init.maps) {
    for (const auto& entry : entries) {
      GALLIUM_RETURN_IF_ERROR(
          switch_->PopulateMap(map_index, entry.key, entry.value));
    }
  }
  for (const auto& [vec_index, values] : spec.init.vectors) {
    GALLIUM_RETURN_IF_ERROR(switch_->PopulateVector(vec_index, values));
  }
  return Status::Ok();
}

Result<net::Packet> OffloadedMiddlebox::CrossLink(bool to_server,
                                                  net::Packet pkt) {
  const bool faulty =
      injector_ != nullptr &&
      (to_server ? injector_->plan().to_server.any()
                 : injector_->plan().to_switch.any());
  if (!faulty) {
    if (!options_.serialize_wire) return pkt;
    const std::vector<uint8_t> wire = pkt.Serialize();
    const uint32_t ingress = pkt.ingress_port();
    GALLIUM_ASSIGN_OR_RETURN(net::Packet parsed, net::Packet::Parse(wire));
    parsed.set_ingress_port(ingress);
    return parsed;
  }

  // Lossy link: frame the wire bytes with a sequence number and checksum,
  // retransmit until the receiver holds a verifiably intact copy, and
  // deduplicate by sequence so duplicates/reorders of this or earlier
  // frames collapse into exactly-once delivery.
  const std::vector<uint8_t> wire = pkt.Serialize();
  const uint32_t ingress = pkt.ingress_port();
  FaultyChannel& chan =
      to_server ? injector_->to_server() : injector_->to_switch();
  uint64_t& delivered = to_server ? delivered_to_server_ : delivered_to_switch_;
  const uint64_t seq = ++next_frame_seq_;
  const std::vector<uint8_t> frame = EncodeDataFrame(seq, wire);

  for (int attempt = 0; attempt < options_.sync_policy.max_data_attempts;
       ++attempt) {
    if (attempt > 0) {
      c_.data_retries->Increment();
      RecordFault("retransmit", to_server ? "switch->server" : "server->switch");
    }
    chan.Send(frame);
    std::optional<std::vector<uint8_t>> got;
    while (auto f = chan.Receive()) {
      uint64_t fseq = 0;
      std::vector<uint8_t> fwire;
      if (!DecodeDataFrame(*f, &fseq, &fwire)) continue;  // corrupted: lost
      if (fseq <= delivered) continue;  // stale duplicate
      if (fseq == seq) got = std::move(fwire);
    }
    if (got.has_value()) {
      delivered = seq;
      GALLIUM_ASSIGN_OR_RETURN(net::Packet parsed, net::Packet::Parse(*got));
      parsed.set_ingress_port(ingress);
      return parsed;
    }
  }
  return Unavailable(
      std::string(to_server ? "switch->server" : "server->switch") +
      " data link failed after " +
      std::to_string(options_.sync_policy.max_data_attempts) + " attempts");
}

Result<double> OffloadedMiddlebox::SyncReplicated(
    const std::vector<RecordingStateBackend::MapMutation>& maps,
    const std::vector<RecordingStateBackend::GlobalMutation>& globals,
    bool* committed) {
  *committed = false;
  SyncBatch batch;
  batch.seq = ++next_sync_seq_;
  batch.epoch = known_epoch_;
  batch.maps = maps;
  batch.globals = globals;
  c_.sync_batches_sent->Increment();

  double total_us = 0;
  double timeout_us = options_.sync_policy.timeout_us;
  for (int attempt = 0; attempt < options_.sync_policy.max_sync_attempts;
       ++attempt) {
    if (attempt > 0) {
      // The previous delivery (or its ack) vanished; we waited the
      // retransmit timeout, then back off.
      c_.sync_retries->Increment();
      RecordFault("sync.retry");
      flight_->Record(flight_lane_, telemetry::EventId::kSyncRetry,
                      static_cast<uint64_t>(attempt), batch.seq);
      total_us += timeout_us;
      timeout_us = std::min(timeout_us * options_.sync_policy.backoff_factor,
                            options_.sync_policy.max_backoff_us);
    }
    if (injector_ != nullptr && injector_->DropBatch()) {
      c_.batches_dropped->Increment();
      RecordFault("sync.batch_drop");
      flight_->Record(flight_lane_, telemetry::EventId::kSyncBatchDrop,
                      batch.seq);
      continue;
    }
    if (injector_ != nullptr) total_us += injector_->SyncDelayUs();
    GALLIUM_ASSIGN_OR_RETURN(SyncAck ack,
                             switch_->ApplySyncBatch(batch, &rng_));
    if (!ack.epoch_ok) {
      // The switch restarted under us and lost everything, including the
      // state this batch assumes. The batch's mutations already live in the
      // authoritative host store, so a full resync both recovers the switch
      // and commits the batch (the snapshot re-arms the seq high-water
      // mark past it — it can never be double-applied).
      c_.switch_restarts->Increment();
      RecordFault("switch.restart", "stale epoch on sync");
      flight_->Record(flight_lane_, telemetry::EventId::kSwitchRestart,
                      switch_->epoch());
      needs_resync_ = true;
      total_us += ResyncSwitch();
      *committed = true;
      return total_us;
    }
    // A grey slow-switch window stretches the control-plane service time.
    total_us += injector_ != nullptr ? ack.latency_us * injector_->LatencyFactor()
                                     : ack.latency_us;
    if (injector_ != nullptr && injector_->DropAck()) {
      // Applied on the switch but the server never learns: the retry is
      // delivered as a duplicate and acked idempotently.
      c_.acks_dropped->Increment();
      RecordFault("sync.ack_drop");
      flight_->Record(flight_lane_, telemetry::EventId::kSyncAckDrop,
                      batch.seq);
      continue;
    }
    *committed = true;
    c_.sync_latency_us->Observe(total_us);
    return total_us;
  }

  // Control plane unreachable. Availability over output commit: release the
  // packet, keep the host authoritative, and rebuild the switch before its
  // next use.
  c_.sync_failures->Increment();
  RecordFault("sync.failure", "retry budget exhausted");
  flight_->Record(flight_lane_, telemetry::EventId::kSyncFailure, batch.seq,
                  static_cast<uint64_t>(options_.sync_policy.max_sync_attempts));
  needs_resync_ = true;
  return total_us;
}

double OffloadedMiddlebox::ResyncSwitch() {
  // The snapshot below carries the full host store, so every queued-but-
  // undelivered mutation is subsumed; delivering them afterwards would
  // reorder behind the snapshot.
  const uint64_t backlog_cleared = sync_queue_.depth();
  sync_queue_.ClearForResync();
  flight_->Record(flight_lane_, telemetry::EventId::kResyncBegin,
                  backlog_cleared);
  const double latency_us =
      switch_->ResyncFromHost(server_state_, next_sync_seq_, &rng_);
  known_epoch_ = switch_->epoch();
  needs_resync_ = false;
  c_.resyncs->Increment();
  c_.resync_latency_us->Observe(latency_us);
  RecordFault("resync");
  uint64_t replayed = 0;
  for (ir::StateIndex m = 0; m < replicated_maps_.size(); ++m) {
    if (replicated_maps_[m]) replayed += server_state_.MapSize(m);
  }
  flight_->Record(flight_lane_, telemetry::EventId::kResyncEnd,
                  static_cast<uint64_t>(latency_us), replayed);
  return latency_us;
}

void OffloadedMiddlebox::ReconcileSwitchGlobals() {
  for (ir::StateIndex g : switch_only_globals_) {
    if (!switch_->IsResident({ir::StateRef::Kind::kGlobal, g})) continue;
    server_state_.GlobalWrite(g, switch_->data_plane().GlobalRead(g));
  }
}

void OffloadedMiddlebox::EnsureSwitchCoherent() {
  if (switch_->epoch() != known_epoch_) {
    c_.switch_restarts->Increment();
    RecordFault("switch.restart", "epoch bump on heartbeat");
    flight_->Record(flight_lane_, telemetry::EventId::kSwitchRestart,
                    switch_->epoch());
    needs_resync_ = true;
  }
  if (needs_resync_) ResyncSwitch();
}

Status OffloadedMiddlebox::PumpSyncBacklog(double* latency_out) {
  const uint64_t depth_before = sync_queue_.depth();
  std::vector<RecordingStateBackend::MapMutation> maps;
  std::vector<RecordingStateBackend::GlobalMutation> globals;
  sync_queue_.DrainInto(&maps, &globals);
  if (maps.empty() && globals.empty()) return Status::Ok();
  c_.backlog_pumps->Increment();
  bool committed = false;
  auto latency = SyncReplicated(maps, globals, &committed);
  if (!latency.ok()) return latency.status();
  flight_->Record(flight_lane_, telemetry::EventId::kSyncBacklogPump,
                  maps.size() + globals.size(),
                  static_cast<uint64_t>(*latency), depth_before);
  // A pump is control-plane evidence just like a heartbeat: its outcome and
  // latency feed the failure detector.
  if (watchdog_ != nullptr) watchdog_->RecordObservation(committed, *latency);
  if (latency_out != nullptr) *latency_out = *latency;
  return Status::Ok();
}

void OffloadedMiddlebox::FlushSyncBacklog() {
  if (!sync_queue_.empty()) (void)PumpSyncBacklog(nullptr);
  // A failed delivery left needs_resync_ set; make the replica match now.
  EnsureSwitchCoherent();
}

void OffloadedMiddlebox::ProbeSwitchHealth(bool switch_down) {
  bool ok = !switch_down;
  double latency_us = 0.0;
  if (ok && injector_ != nullptr && injector_->ProbeMiss()) ok = false;
  if (ok) {
    latency_us = switch_->ProbeHealth(&rng_);
    if (injector_ != nullptr) {
      latency_us =
          latency_us * injector_->LatencyFactor() + injector_->ExtraDelayUs();
    }
  } else {
    c_.probe_misses->Increment();
    RecordFault("probe.miss");
  }
  watchdog_->RecordObservation(ok, latency_us);
}

telemetry::TraceHop* OffloadedMiddlebox::AddHop(const char* stage) {
  if (active_trace_ == nullptr) return nullptr;
  active_trace_->hops.push_back(telemetry::TraceHop{});
  active_trace_->hops.back().stage = stage;
  return &active_trace_->hops.back();
}

void OffloadedMiddlebox::RecordFault(const char* kind, std::string detail) {
  if (active_trace_ == nullptr) return;
  active_trace_->events.push_back(
      telemetry::TraceFaultEvent{kind, std::move(detail), 0});
}

void OffloadedMiddlebox::RecordSwitchHop(const char* stage,
                                         const ExecStats& stats) {
  telemetry::TraceHop* hop = AddHop(stage);
  hop->ops = ToOpCounts(stats);
  hop->stages_occupied = switch_->stages_occupied();
}

void OffloadedMiddlebox::RecordWireHop(const char* stage, int transfer_bytes) {
  AddHop(stage)->transfer_bytes = transfer_bytes;
}

void OffloadedMiddlebox::RecordServerHop(const char* stage,
                                         const ExecStats& stats) {
  AddHop(stage)->ops = ToOpCounts(stats);
}

void OffloadedMiddlebox::RecordSyncHop(double latency_us) {
  // The modeled control-plane latency is known here — stamp it natively
  // (perf::StampTrace leaves non-zero durations alone).
  AddHop(telemetry::kHopSyncCommit)->duration_us = latency_us;
}

void OffloadedMiddlebox::PublishSwitchStageMetrics() {
  // Scrape point: push the locally batched per-packet counts and op counts
  // onto the registry so an export that follows sees the full series.
  c_.packets_total->Increment(packets_total_ - pushed_packets_total_);
  pushed_packets_total_ = packets_total_;
  c_.packets_fast->Increment(packets_fast_ - pushed_packets_fast_);
  pushed_packets_fast_ = packets_fast_;
  switch_ops_.Flush();
  server_ops_.Flush();
  switch_->PublishStageMetrics(registry_, scope_);
  if (options_.sync_queue.enabled()) {
    const telemetry::LabelSet& scope = scope_;
    registry_
        ->GetGauge("gallium_sync_backlog_depth", scope,
                   "queued sync batches awaiting the next pump")
        ->Set(static_cast<double>(sync_queue_.depth()));
    registry_
        ->GetGauge("gallium_sync_backlog_peak_depth", scope,
                   "high-water mark of the sync backlog")
        ->Set(static_cast<double>(sync_queue_.peak_depth()));
    registry_
        ->GetGauge("gallium_sync_coalesced_mutations", scope,
                   "queued mutations superseded by a later same-key write")
        ->Set(static_cast<double>(sync_queue_.coalesced_mutations()));
    registry_
        ->GetGauge("gallium_sync_enqueued_mutations", scope,
                   "replicated-state mutations that entered the backlog")
        ->Set(static_cast<double>(sync_queue_.enqueued_mutations()));
  }
  if (watchdog_ != nullptr) {
    const telemetry::LabelSet& scope = scope_;
    registry_
        ->GetGauge("gallium_watchdog_mode", scope,
                   "0=offloaded 1=degraded 2=resync_pending")
        ->Set(static_cast<double>(watchdog_->mode()));
    registry_
        ->GetGauge("gallium_watchdog_transitions", scope,
                   "mode changes — the bounded-flapping quantity")
        ->Set(static_cast<double>(watchdog_->transitions()));
    registry_
        ->GetGauge("gallium_watchdog_probes_sent", scope, "heartbeats sent")
        ->Set(static_cast<double>(watchdog_->probes_sent()));
    registry_
        ->GetGauge("gallium_watchdog_probes_missed", scope,
                   "heartbeats lost or unanswered")
        ->Set(static_cast<double>(watchdog_->probes_missed()));
    registry_
        ->GetGauge("gallium_watchdog_latency_ewma_us", scope,
                   "smoothed control-plane latency the detector sees")
        ->Set(watchdog_->latency_ewma_us());
  }
  // Flow-table occupancy gauges + bounded probe-length sample per map, and
  // the recorder's own ring self-metrics.
  for (ir::StateIndex m = 0; m < fn_->maps().size(); ++m) {
    state::FlowTable* table = server_state_.flow_table(m);
    if (table != nullptr) table->PublishMetrics();
  }
  flight_->PublishMetrics(registry_);
}

OffloadedMiddlebox::Outcome OffloadedMiddlebox::ProcessTraced(
    net::Packet&& pkt, uint64_t now_ms) {
  telemetry::PacketTrace trace;
  trace.packet_id = packets_total();
  trace.scope = fn_->name();
  active_trace_ = &trace;
  Outcome outcome = ProcessInner(std::move(pkt), now_ms);
  active_trace_ = nullptr;
  trace.fast_path = outcome.fast_path;
  trace.degraded = outcome.degraded;
  trace.ok = outcome.status.ok();
  options_.tracer->Commit(std::move(trace));
  return outcome;
}

OffloadedMiddlebox::Outcome OffloadedMiddlebox::ProcessInner(net::Packet&& pkt,
                                                             uint64_t now_ms) {
  Outcome outcome;
  const uint64_t pkt_index = packets_total_;
  ++packets_total_;

  bool switch_down = false;
  if (injector_ != nullptr) {
    injector_->BeginPacket(pkt_index);
    if (injector_->TakeRestart(pkt_index)) {
      switch_->Restart();
      flight_->Record(flight_lane_, telemetry::EventId::kSwitchRestart,
                      switch_->epoch());
    }
    switch_down = injector_->SwitchDown(pkt_index);
    // Fault-window edges: the injector folds its windows per packet; the
    // recorder keeps the transitions so a postmortem can line counter
    // movement up against when the substrate actually went grey.
    if (injector_->InGreyWindow() != in_grey_window_) {
      in_grey_window_ = !in_grey_window_;
      flight_->Record(flight_lane_,
                      in_grey_window_ ? telemetry::EventId::kGreyWindowBegin
                                      : telemetry::EventId::kGreyWindowEnd,
                      pkt_index);
    }
    if (switch_down != in_outage_) {
      in_outage_ = switch_down;
      flight_->Record(flight_lane_,
                      in_outage_ ? telemetry::EventId::kOutageBegin
                                 : telemetry::EventId::kOutageEnd,
                      pkt_index);
    }
  }

  if (watchdog_ != nullptr) {
    // Evidence-based mode control: the injector's per-packet ground truth is
    // invisible here; only probes and sync outcomes move the mode machine.
    if (watchdog_->OnPacket()) ProbeSwitchHealth(switch_down);
    if (watchdog_->mode() == HealthWatchdog::Mode::kResyncPending &&
        !switch_down) {
      // Two-phase recovery: rebuild the replica from the authoritative host
      // store, then report offloaded again.
      needs_resync_ = true;
      EnsureSwitchCoherent();
      watchdog_->NotifyResynced();
    }
    if (watchdog_->mode() != HealthWatchdog::Mode::kOffloaded) {
      return ProcessDegraded(std::move(pkt), now_ms);
    }
    if (switch_down) {
      // An outage the detector has not noticed yet. Fall back per packet for
      // safety, but count it separately: the watchdog's transition count
      // stays the honest measure of mode flapping.
      c_.unwatched_fallbacks->Increment();
      RecordFault("switch.unreachable", "fallback before watchdog caught up");
      return ProcessDegraded(std::move(pkt), now_ms);
    }
  } else if (switch_down) {
    return ProcessDegraded(std::move(pkt), now_ms);
  }

  // This packet takes the offloaded path: close any open degraded episode.
  if (degraded_streak_ != 0) {
    flight_->Record(flight_lane_, telemetry::EventId::kDegradedExit,
                    degraded_streak_);
    degraded_streak_ = 0;
  }

  if (options_.sync_queue.enabled()) {
    // Bounded-backlog admission control. The shed happens before this packet
    // touches any state or crosses any link, so a shed packet is invisible
    // to both the host store and the switch — "equivalence modulo
    // explicitly-shed packets" stays checkable.
    if (sync_queue_.depth() >= options_.sync_queue.max_backlog_batches) {
      if (options_.sync_queue.overflow ==
          SyncQueueOptions::OverflowPolicy::kShedIngress) {
        c_.packets_shed->Increment();
        RecordFault("overload.shed", "backlog at bound; refused at ingress");
        // Episode edges, not per-shed events: a sustained overload sheds
        // thousands of packets and would wrap the lane with noise.
        if (shed_streak_++ == 0) {
          flight_->Record(flight_lane_, telemetry::EventId::kShedEpisodeBegin,
                          sync_queue_.depth());
        }
        outcome.shed = true;
        outcome.verdict.kind = Verdict::Kind::kDrop;
        return outcome;
      }
      // Backpressure: this packet blocks on an inline drain, paying the
      // legacy-style control-plane wait to get the backlog under the bound.
      c_.backpressure_events->Increment();
      RecordFault("overload.backpressure", "inline drain at the bound");
      flight_->Record(flight_lane_, telemetry::EventId::kSyncBackpressure,
                      sync_queue_.depth());
      double wait_us = 0;
      Status drained = PumpSyncBacklog(&wait_us);
      outcome.sync_latency_us += wait_us;
      if (!drained.ok()) {
        outcome.status = drained;
        return outcome;
      }
    }
    // This packet was admitted: close any open shed episode.
    if (shed_streak_ != 0) {
      flight_->Record(flight_lane_, telemetry::EventId::kShedEpisodeEnd,
                      shed_streak_);
      shed_streak_ = 0;
    }
    // Scheduled pump: deliver the coalesced backlog every pump interval so
    // switch staleness is bounded by pump_interval_packets.
    if (++packets_since_pump_ >= options_.sync_queue.pump_interval_packets) {
      packets_since_pump_ = 0;
      if (!sync_queue_.empty()) {
        Status pumped = PumpSyncBacklog(nullptr);
        if (!pumped.ok()) {
          outcome.status = pumped;
          return outcome;
        }
      }
    }
  }

  // Heartbeat: an epoch bump means the switch restarted (scheduled or not)
  // and lost its state; needs_resync_ means the state went stale while the
  // switch was unreachable. Either way, rebuild from the host store before
  // this packet touches a table.
  EnsureSwitchCoherent();

  const bool cache_mode = options_.cache_entries_per_table > 0;
  // In cache mode the pre pass may turn out to be non-authoritative; keep a
  // pristine copy so the server can reprocess from scratch.
  net::Packet pristine;
  if (cache_mode) pristine = pkt;

  // --- 1. Switch: pre-processing pass ---------------------------------------
  switch_->BeginPipelinePass();
  ExecResult pre = interp_.RunPartition(pkt, switch_->data_plane(), now_ms,
                                        plan_, Part::kPre,
                                        /*in_spec=*/nullptr,
                                        /*in_values=*/nullptr,
                                        &plan_.to_server,
                                        cache_mode ? &cached_maps_ : nullptr,
                                        &scratch_);
  outcome.switch_stats += pre.stats;
  switch_ops_.Add(ToOpCounts(pre.stats));
  if (active_trace_ != nullptr) [[unlikely]] {
    RecordSwitchHop(telemetry::kHopSwitchPre, pre.stats);
  }
  if (!pre.status.ok()) {
    outcome.status = pre.status;
    return outcome;
  }
  if (pre.cache_miss_abort) {
    c_.cache_misses->Increment();
    if (active_trace_ != nullptr) [[unlikely]] {
      RecordFault("cache_miss", "pre pass aborted on a non-authoritative miss");
      active_trace_->cache_miss = true;
    }
    Outcome miss_outcome = ProcessCacheMiss(std::move(pristine), now_ms);
    miss_outcome.switch_stats += pre.stats;  // the aborted pre attempt
    return miss_outcome;
  }

  if (!pre.needs_server) {
    // Fast path: the switch completed the packet by itself.
    if (!pre.verdict.decided()) {
      outcome.status = Internal("pre pass finished without a verdict");
      return outcome;
    }
    ++packets_fast_;
    outcome.fast_path = true;
    outcome.verdict = pre.verdict;
    outcome.out_packet = std::move(pkt);
    ReconcileSwitchGlobals();
    return outcome;
  }
  if (pre.verdict.decided()) {
    outcome.status = Internal(
        "pre pass produced a verdict on a path that still owes server work");
    return outcome;
  }

  // --- 2. Wire: switch -> server with the synthesized header ------------------
  net::GalliumHeader header1 = PackTransfer(*fn_, plan_.to_server,
                                            pre.transfer_out);
  outcome.transfer_bytes_to_server = static_cast<int>(header1.WireSize());
  if (active_trace_ != nullptr) [[unlikely]] {
    RecordWireHop(telemetry::kHopWireToServer, outcome.transfer_bytes_to_server);
  }
  net::Packet server_pkt = std::move(pkt);
  server_pkt.set_gallium(std::move(header1));
  {
    auto crossed = CrossLink(/*to_server=*/true, std::move(server_pkt));
    if (!crossed.ok()) {
      outcome.status = crossed.status();
      needs_resync_ = true;  // the pre pass may have left partial registers
      return outcome;
    }
    server_pkt = std::move(crossed).value();
  }
  auto in_values1 =
      UnpackTransfer(*fn_, plan_.to_server, server_pkt.gallium());
  if (!in_values1.ok()) {
    outcome.status = in_values1.status();
    return outcome;
  }
  server_pkt.clear_gallium();

  // --- 3. Server: non-offloaded pass with replicated-state recording ----------
  RecordingStateBackend& recording = *recording_;
  recording.Clear();
  ExecResult srv = interp_.RunPartition(server_pkt, recording, now_ms, plan_,
                                        Part::kNonOffloaded, &plan_.to_server,
                                        &in_values1.value(), &plan_.to_switch,
                                        /*cached_maps=*/nullptr, &scratch_);
  outcome.server_stats += srv.stats;
  server_ops_.Add(ToOpCounts(srv.stats));
  if (active_trace_ != nullptr) [[unlikely]] {
    RecordServerHop(telemetry::kHopServer, srv.stats);
  }
  if (!srv.status.ok()) {
    outcome.status = srv.status;
    return outcome;
  }

  // Atomic update + output commit: the packet is held until every
  // replicated-state mutation is visible on the switch (§4.3.3) — or, under
  // a control-plane outage, until the retry budget is exhausted and the
  // switch is marked for full resync. In queued mode the commit is relaxed
  // for map mutations: they join the coalescing backlog and the packet is
  // released now. That deferral is sound only because map staleness is
  // *detectable* — a queued insert the switch has not seen surfaces as a
  // table miss, which routes the packet to the server for an authoritative
  // recompute against the host store. A replicated global has no miss path
  // (the switch reads whatever the register holds, e.g. mazu_nat's
  // port_counter feeding allocations), so any batch carrying a global
  // mutation keeps strict output commit: the backlog drains first to
  // preserve ordering, then the whole batch syncs inline.
  if (recording.HasMutations()) {
    const bool deferrable = options_.sync_queue.enabled() &&
                            recording.global_mutations().empty();
    if (deferrable) {
      sync_queue_.Enqueue(recording.map_mutations(),
                          recording.global_mutations());
      outcome.sync_queued = true;
      RecordFault("sync.queued");
    } else {
      if (options_.sync_queue.enabled() && !sync_queue_.empty()) {
        Status drained = PumpSyncBacklog(nullptr);
        if (!drained.ok()) {
          outcome.status = drained;
          return outcome;
        }
      }
      bool committed = false;
      auto latency = SyncReplicated(recording.map_mutations(),
                                    recording.global_mutations(), &committed);
      if (!latency.ok()) {
        outcome.status = latency.status();
        return outcome;
      }
      outcome.state_synced = committed;
      outcome.sync_latency_us = *latency;
      if (active_trace_ != nullptr) [[unlikely]] RecordSyncHop(*latency);
    }
  }

  // --- 4. Wire: server -> switch, then the post-processing pass ----------------
  net::GalliumHeader header2 = PackTransfer(*fn_, plan_.to_switch,
                                            srv.transfer_out);
  outcome.transfer_bytes_to_switch = static_cast<int>(header2.WireSize());
  if (active_trace_ != nullptr) [[unlikely]] {
    RecordWireHop(telemetry::kHopWireToSwitch, outcome.transfer_bytes_to_switch);
  }
  net::Packet back_pkt = std::move(server_pkt);
  back_pkt.set_gallium(std::move(header2));
  {
    auto crossed = CrossLink(/*to_server=*/false, std::move(back_pkt));
    if (!crossed.ok()) {
      outcome.status = crossed.status();
      needs_resync_ = true;
      return outcome;
    }
    back_pkt = std::move(crossed).value();
  }
  auto in_values2 = UnpackTransfer(*fn_, plan_.to_switch, back_pkt.gallium());
  if (!in_values2.ok()) {
    outcome.status = in_values2.status();
    return outcome;
  }
  back_pkt.clear_gallium();

  switch_->BeginPipelinePass();
  ExecResult post = interp_.RunPartition(back_pkt, switch_->data_plane(),
                                         now_ms, plan_, Part::kPost,
                                         &plan_.to_switch, &in_values2.value(),
                                         /*out_spec=*/nullptr,
                                         /*cached_maps=*/nullptr, &scratch_);
  outcome.switch_stats += post.stats;
  switch_ops_.Add(ToOpCounts(post.stats));
  if (active_trace_ != nullptr) [[unlikely]] {
    RecordSwitchHop(telemetry::kHopSwitchPost, post.stats);
  }
  if (!post.status.ok()) {
    outcome.status = post.status;
    return outcome;
  }

  // Verdict resolution: exactly one of the server / post passes decides.
  if (srv.verdict.decided() == post.verdict.decided()) {
    outcome.status = Internal(
        srv.verdict.decided() ? "both server and post pass produced a verdict"
                              : "no pass produced a verdict");
    return outcome;
  }
  outcome.verdict = srv.verdict.decided() ? srv.verdict : post.verdict;
  outcome.out_packet = std::move(back_pkt);
  ReconcileSwitchGlobals();
  return outcome;
}

OffloadedMiddlebox::Outcome OffloadedMiddlebox::ProcessDegraded(
    net::Packet pkt, uint64_t now_ms) {
  Outcome outcome;
  outcome.degraded = true;
  c_.degraded_packets->Increment();
  RecordFault("degraded", "switch down; software-only fallback");
  if (degraded_streak_++ == 0) {
    flight_->Record(flight_lane_, telemetry::EventId::kDegradedEnter,
                    packets_total_);
  }
  // The switch is unreachable; the server carries the whole program against
  // the authoritative host store — exactly the SoftwareMiddlebox semantics,
  // so per-flow behavior is indistinguishable from the baseline.
  ExecResult r = interp_.Run(pkt, server_state_, now_ms, &scratch_);
  outcome.server_stats += r.stats;
  server_ops_.Add(ToOpCounts(r.stats));
  if (active_trace_ != nullptr) [[unlikely]] {
    RecordServerHop(telemetry::kHopDegraded, r.stats);
  }
  if (!r.status.ok()) {
    outcome.status = r.status;
    return outcome;
  }
  if (!r.verdict.decided()) {
    outcome.status = Internal("degraded pass finished without a verdict");
    return outcome;
  }
  outcome.verdict = r.verdict;
  outcome.out_packet = std::move(pkt);
  // Whatever state this packet touched, the switch replica no longer
  // matches it; repopulate the tables before the switch serves again.
  needs_resync_ = true;
  return outcome;
}

OffloadedMiddlebox::Outcome OffloadedMiddlebox::ProcessCacheMiss(
    net::Packet pkt, uint64_t now_ms) {
  Outcome outcome;
  // The switch forwards the pristine packet to the server (§7: "for any
  // packet that the programmable switch does not know how to handle, the
  // middlebox server handles it instead"). The server runs everything but
  // the post partition against its authoritative state.
  RecordingStateBackend& recording = *recording_;
  recording.Clear();
  ExecResult srv = interp_.RunServerFull(pkt, recording, now_ms, plan_,
                                         &plan_.to_switch, cached_maps_,
                                         &scratch_);
  outcome.server_stats += srv.stats;
  server_ops_.Add(ToOpCounts(srv.stats));
  if (active_trace_ != nullptr) [[unlikely]] {
    RecordServerHop(telemetry::kHopServerFull, srv.stats);
  }
  if (!srv.status.ok()) {
    outcome.status = srv.status;
    return outcome;
  }

  // Build one atomic batch: the packet's replicated-state mutations plus a
  // cache refresh for every (still-present) key the packet looked up.
  std::vector<RecordingStateBackend::MapMutation> mutations =
      recording.map_mutations();
  std::set<std::pair<ir::StateIndex, StateKey>> seen;
  for (const auto& [map, key] : srv.cached_lookups) {
    if (!seen.insert({map, key}).second) continue;
    StateValue value;
    if (server_state_.MapLookup(map, key, &value)) {
      mutations.push_back(
          RecordingStateBackend::MapMutation{map, key, value, false});
    }
  }
  if (!mutations.empty() || !recording.global_mutations().empty()) {
    // Cache refreshes must install synchronously (the next pre pass relies
    // on them), so this stays an inline sync even in queued mode — but the
    // backlog must land first, or a queued older write to one of these keys
    // would later overwrite the refreshed value.
    if (options_.sync_queue.enabled() && !sync_queue_.empty()) {
      Status drained = PumpSyncBacklog(nullptr);
      if (!drained.ok()) {
        outcome.status = drained;
        return outcome;
      }
    }
    bool committed = false;
    auto latency =
        SyncReplicated(mutations, recording.global_mutations(), &committed);
    if (!latency.ok()) {
      outcome.status = latency.status();
      return outcome;
    }
    // Output commit applies only to the packet's own state updates; pure
    // cache refreshes do not hold the packet.
    if (recording.HasMutations()) {
      outcome.state_synced = committed;
      outcome.sync_latency_us = *latency;
      if (active_trace_ != nullptr) [[unlikely]] RecordSyncHop(*latency);
    }
  }

  // Post pass on the switch, as usual.
  net::GalliumHeader header2 =
      PackTransfer(*fn_, plan_.to_switch, srv.transfer_out);
  outcome.transfer_bytes_to_switch = static_cast<int>(header2.WireSize());
  if (active_trace_ != nullptr) [[unlikely]] {
    RecordWireHop(telemetry::kHopWireToSwitch, outcome.transfer_bytes_to_switch);
  }
  auto in_values2 = UnpackTransfer(*fn_, plan_.to_switch, header2);
  if (!in_values2.ok()) {
    outcome.status = in_values2.status();
    return outcome;
  }
  switch_->BeginPipelinePass();
  ExecResult post = interp_.RunPartition(pkt, switch_->data_plane(), now_ms,
                                         plan_, Part::kPost,
                                         &plan_.to_switch, &in_values2.value(),
                                         /*out_spec=*/nullptr,
                                         /*cached_maps=*/nullptr, &scratch_);
  outcome.switch_stats += post.stats;
  switch_ops_.Add(ToOpCounts(post.stats));
  if (active_trace_ != nullptr) [[unlikely]] {
    RecordSwitchHop(telemetry::kHopSwitchPost, post.stats);
  }
  if (!post.status.ok()) {
    outcome.status = post.status;
    return outcome;
  }

  if (srv.verdict.decided() == post.verdict.decided()) {
    outcome.status = Internal(
        srv.verdict.decided()
            ? "both server-full and post pass produced a verdict"
            : "no pass produced a verdict after cache miss");
    return outcome;
  }
  outcome.verdict = srv.verdict.decided() ? srv.verdict : post.verdict;
  outcome.out_packet = std::move(pkt);
  ReconcileSwitchGlobals();
  return outcome;
}

Result<int> OffloadedMiddlebox::CollectIdleFlows(ir::StateIndex flows_map,
                                                 ir::StateIndex created_map,
                                                 uint64_t now_ms,
                                                 uint64_t timeout_ms,
                                                 uint64_t max_scan_slots) {
  std::vector<StateKey> expired;
  state::FlowTable* created = server_state_.flow_table(created_map);
  if (created != nullptr) {
    // Sweep the flat table directly: expired entries are erased from
    // created_map in place (no snapshot, no per-entry rehash), and the keys
    // collected for the flows_map erase + switch sync below.
    const bool has_stamp = created->value_words() > 0;
    const size_t kw = created->key_words();
    const auto pred = [&](const uint64_t*, const uint64_t* value) {
      return has_stamp && now_ms - value[0] >= timeout_ms;
    };
    const auto on_expire = [&](const uint64_t* key, const uint64_t*) {
      expired.emplace_back(key, key + kw);
    };
    if (max_scan_slots == 0) {
      created->SweepAllExpired(pred, on_expire);
    } else {
      if (aging_cursor_map_ != created_map) {
        aging_cursor_ = state::FlowTable::SweepCursor{};
        aging_cursor_map_ = created_map;
      }
      created->SweepExpired(&aging_cursor_, max_scan_slots, pred, on_expire);
    }
  } else {
    // LPM-backed created_map — not a flow map in practice; keep the
    // snapshot scan for completeness.
    for (const auto& [key, value] : server_state_.map_contents(created_map)) {
      if (!value.empty() && now_ms - value[0] >= timeout_ms) {
        expired.push_back(key);
      }
    }
    for (const StateKey& key : expired) {
      server_state_.MapErase(created_map, key);
    }
  }
  if (expired.empty()) return 0;

  std::vector<RecordingStateBackend::MapMutation> mutations;
  mutations.reserve(expired.size() * 2);
  for (const StateKey& key : expired) {
    server_state_.MapErase(flows_map, key);
    mutations.push_back(
        RecordingStateBackend::MapMutation{flows_map, key, {}, true});
    mutations.push_back(
        RecordingStateBackend::MapMutation{created_map, key, {}, true});
  }
  if (options_.sync_queue.enabled()) {
    // Queue the erases behind any pending writes to the same keys: per-key
    // last-writer-wins then guarantees the erase is what the switch ends up
    // seeing, exactly as the host store does.
    sync_queue_.Enqueue(mutations, {});
    return static_cast<int>(expired.size());
  }
  bool committed = false;
  GALLIUM_ASSIGN_OR_RETURN(double latency,
                           SyncReplicated(mutations, {}, &committed));
  (void)latency;
  (void)committed;  // on failure the switch is marked for resync
  return static_cast<int>(expired.size());
}

}  // namespace gallium::runtime
