// Bounded, coalescing control-plane backlog (ROADMAP: "batched+coalesced
// control-plane update streams" surviving heavy flow arrival rates).
//
// The inline write-back path pays one control-plane round-trip (~135 µs)
// per state-mutating packet; under flow churn that is the bottleneck long
// before the data plane is. The backlog queue decouples the two: packets
// enqueue their replicated-state mutations and are released immediately
// (relaxed output commit — the host store stays authoritative), and the
// runtime drains the queue as one *coalesced* batch per pump: mutations to
// the same key merge last-writer-wins, so N updates of one flow's entry
// cost one table write, while per-key ordering (and therefore the final
// replicated state) is preserved exactly.
//
// The queue is bounded. When an enqueue would exceed the bound the runtime
// applies its overflow policy — backpressure (drain inline, blocking like
// the legacy path) or ingress shedding (refuse the packet before it touches
// state, explicitly accounted) — so an unreachable control plane degrades
// into a measured, bounded backlog instead of an unbounded queue.
//
// Scope: only *map* mutations are deferrable. Their staleness is detectable
// (a queued insert the switch has not seen is a table miss, and the miss
// path recomputes on the server against the authoritative host store);
// a replicated global's staleness is not (register reads have no miss
// path), so the runtime keeps strict output commit for any batch that
// carries a global mutation.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/state.h"
#include "util/status.h"

namespace gallium::runtime {

struct SyncQueueOptions {
  // Queued batches the backlog may hold; 0 selects the legacy inline
  // blocking sync path (no queue at all).
  uint64_t max_backlog_batches = 0;
  // Deliver the coalesced backlog every this-many packets (1 = drain every
  // packet; larger values trade switch staleness for coalescing factor).
  uint64_t pump_interval_packets = 1;
  enum class OverflowPolicy : uint8_t {
    kBackpressure,  // drain inline (blocking) until below the bound
    kShedIngress,   // refuse new packets at ingress, explicitly accounted
  };
  OverflowPolicy overflow = OverflowPolicy::kBackpressure;

  bool enabled() const { return max_backlog_batches > 0; }
};

// The backlog itself: a hashed per-key view of every queued mutation, kept
// in first-touch arrival order. Single-writer, like the rest of the
// per-instance runtime.
class CoalescingSyncQueue {
 public:
  using MapMutation = RecordingStateBackend::MapMutation;
  using GlobalMutation = RecordingStateBackend::GlobalMutation;

  // Folds one packet's mutations into the backlog. Mutations land in
  // arrival order per key; a later write to the same key replaces the
  // queued one (last-writer-wins) and is counted as coalesced.
  void Enqueue(const std::vector<MapMutation>& maps,
               const std::vector<GlobalMutation>& globals);

  // Pops the entire pending backlog as one coalesced batch, first-touched
  // key first. The queue is empty afterwards.
  void DrainInto(std::vector<MapMutation>* maps,
                 std::vector<GlobalMutation>* globals);

  // Drops the backlog without delivering it — correct only when a full
  // resync from the host store is about to subsume every queued mutation.
  void ClearForResync();

  bool empty() const { return depth_ == 0; }
  // Queued batches (enqueues) not yet drained — the bounded quantity.
  uint64_t depth() const { return depth_; }
  uint64_t peak_depth() const { return peak_depth_; }

  // Accounting.
  uint64_t enqueued_batches() const { return enqueued_batches_; }
  uint64_t enqueued_mutations() const { return enqueued_mutations_; }
  // Mutations superseded by a later write to the same key — control-plane
  // work the coalescer eliminated.
  uint64_t coalesced_mutations() const { return coalesced_mutations_; }
  uint64_t drained_batches() const { return drained_batches_; }
  // Mutations dropped by ClearForResync (subsumed by a snapshot).
  uint64_t cleared_mutations() const { return cleared_mutations_; }

 private:
  // Pending mutations live in dense vectors in first-touch arrival order —
  // DrainInto emits them by a straight move, no sort. A later write to a
  // queued key overwrites its vector slot in place (last-writer-wins,
  // arrival position preserved). The lookup that used to be an O(log n)
  // ordered-map find per mutation is an open-addressing hash index over the
  // map vector (slot stores position+1; keys are compared against the
  // pending mutation itself, so the index holds no key storage). Globals
  // are dense small integers and index directly. Drains and clears retain
  // capacity: at steady state under churn the queue never allocates.
  struct PendingMap {
    uint64_t hash;
    MapMutation mutation;
  };

  uint64_t HashOf(ir::StateIndex map, const StateKey& key) const;
  // Probes the index for (map, key): returns the slot holding its
  // position+1, or the empty slot where it would be inserted (*slot == 0).
  uint64_t* FindIndexSlot(uint64_t hash, ir::StateIndex map,
                          const StateKey& key);
  // Doubles (or initializes) the index and re-registers every pending
  // mutation. Positions are stable, so this is hash-only work.
  void GrowIndex();

  std::vector<PendingMap> pending_maps_;
  std::vector<uint64_t> map_index_;  // power-of-two open addressing
  std::vector<GlobalMutation> pending_globals_;
  std::vector<uint32_t> global_slot_;  // global -> position+1

  uint64_t depth_ = 0;
  uint64_t peak_depth_ = 0;
  uint64_t enqueued_batches_ = 0;
  uint64_t enqueued_mutations_ = 0;
  uint64_t coalesced_mutations_ = 0;
  uint64_t drained_batches_ = 0;
  uint64_t cleared_mutations_ = 0;
};

}  // namespace gallium::runtime
