#include "runtime/interpreter.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

namespace gallium::runtime {

using ir::HeaderField;
using ir::Opcode;
using partition::Part;

ExecStats& ExecStats::operator+=(const ExecStats& other) {
  insts += other.insts;
  alu_ops += other.alu_ops;
  header_ops += other.header_ops;
  map_lookups += other.map_lookups;
  map_updates += other.map_updates;
  vector_ops += other.vector_ops;
  global_ops += other.global_ops;
  payload_ops += other.payload_ops;
  branches += other.branches;
  return *this;
}

ExecStats FromOpCounts(const telemetry::OpCounts& counts) {
  auto clamp = [](int64_t v) {
    return static_cast<int>(std::min<int64_t>(
        v, std::numeric_limits<int>::max()));
  };
  ExecStats stats;
  stats.insts = clamp(counts.insts);
  stats.alu_ops = clamp(counts.alu_ops);
  stats.header_ops = clamp(counts.header_ops);
  stats.map_lookups = clamp(counts.map_lookups);
  stats.map_updates = clamp(counts.map_updates);
  stats.vector_ops = clamp(counts.vector_ops);
  stats.global_ops = clamp(counts.global_ops);
  stats.payload_ops = clamp(counts.payload_ops);
  stats.branches = clamp(counts.branches);
  return stats;
}

Interpreter::Interpreter(const ir::Function& fn) : fn_(&fn) {}

uint64_t Interpreter::ReadHeaderField(const net::Packet& pkt, HeaderField f) {
  switch (f) {
    case HeaderField::kEthSrc: return pkt.eth().src.ToUint64();
    case HeaderField::kEthDst: return pkt.eth().dst.ToUint64();
    case HeaderField::kEthType: return pkt.eth().ether_type;
    case HeaderField::kIpSrc: return pkt.ip().saddr;
    case HeaderField::kIpDst: return pkt.ip().daddr;
    case HeaderField::kIpProto: return pkt.ip().protocol;
    case HeaderField::kIpTtl: return pkt.ip().ttl;
    case HeaderField::kSrcPort: return pkt.sport();
    case HeaderField::kDstPort: return pkt.dport();
    case HeaderField::kTcpFlags: return pkt.has_tcp() ? pkt.tcp().flags : 0;
    case HeaderField::kTcpSeq: return pkt.has_tcp() ? pkt.tcp().seq : 0;
    case HeaderField::kTcpAck: return pkt.has_tcp() ? pkt.tcp().ack : 0;
    case HeaderField::kIngressPort: return pkt.ingress_port();
  }
  return 0;
}

void Interpreter::WriteHeaderField(net::Packet& pkt, HeaderField f,
                                   uint64_t value) {
  switch (f) {
    case HeaderField::kEthSrc:
      pkt.eth().src = net::MacAddr::FromUint64(value);
      break;
    case HeaderField::kEthDst:
      pkt.eth().dst = net::MacAddr::FromUint64(value);
      break;
    case HeaderField::kEthType:
      pkt.eth().ether_type = static_cast<uint16_t>(value);
      break;
    case HeaderField::kIpSrc:
      pkt.ip().saddr = static_cast<uint32_t>(value);
      break;
    case HeaderField::kIpDst:
      pkt.ip().daddr = static_cast<uint32_t>(value);
      break;
    case HeaderField::kIpProto:
      pkt.ip().protocol = static_cast<uint8_t>(value);
      break;
    case HeaderField::kIpTtl:
      pkt.ip().ttl = static_cast<uint8_t>(value);
      break;
    case HeaderField::kSrcPort:
      pkt.set_sport(static_cast<uint16_t>(value));
      break;
    case HeaderField::kDstPort:
      pkt.set_dport(static_cast<uint16_t>(value));
      break;
    case HeaderField::kTcpFlags:
      if (pkt.has_tcp()) pkt.tcp().flags = static_cast<uint8_t>(value);
      break;
    case HeaderField::kTcpSeq:
      if (pkt.has_tcp()) pkt.tcp().seq = static_cast<uint32_t>(value);
      break;
    case HeaderField::kTcpAck:
      if (pkt.has_tcp()) pkt.tcp().ack = static_cast<uint32_t>(value);
      break;
    case HeaderField::kIngressPort:
      pkt.set_ingress_port(static_cast<uint32_t>(value));
      break;
  }
}

namespace {

bool PayloadContains(const net::Packet& pkt, const std::string& pattern) {
  const auto& payload = pkt.payload();
  if (pattern.empty() || payload.size() < pattern.size()) return false;
  const auto it = std::search(payload.begin(), payload.end(), pattern.begin(),
                              pattern.end());
  return it != payload.end();
}

}  // namespace

ExecResult Interpreter::Run(net::Packet& pkt, StateBackend& state,
                            uint64_t now_ms, ExecScratch* scratch) const {
  return Walk(pkt, state, now_ms, WalkConfig{}, nullptr, nullptr, nullptr,
              scratch);
}

ExecResult Interpreter::RunPartition(
    net::Packet& pkt, StateBackend& state, uint64_t now_ms,
    const partition::PartitionPlan& plan, Part part,
    const partition::TransferSpec* in_spec, const TransferValues* in_values,
    const partition::TransferSpec* out_spec,
    const std::vector<bool>* cached_maps, ExecScratch* scratch) const {
  WalkConfig config;
  config.plan = &plan;
  config.part = part;
  config.cached_maps = cached_maps;
  return Walk(pkt, state, now_ms, config, in_spec, in_values, out_spec,
              scratch);
}

ExecResult Interpreter::RunServerFull(
    net::Packet& pkt, StateBackend& state, uint64_t now_ms,
    const partition::PartitionPlan& plan,
    const partition::TransferSpec* out_spec,
    const std::vector<bool>& cached_maps, ExecScratch* scratch) const {
  WalkConfig config;
  config.plan = &plan;
  config.part = Part::kNonOffloaded;
  config.cached_maps = &cached_maps;
  config.full_server = true;
  return Walk(pkt, state, now_ms, config, nullptr, nullptr, out_spec, scratch);
}

ExecResult Interpreter::Walk(net::Packet& pkt, StateBackend& state,
                             uint64_t now_ms, const WalkConfig& config,
                             const partition::TransferSpec* in_spec,
                             const TransferValues* in_values,
                             const partition::TransferSpec* out_spec,
                             ExecScratch* scratch) const {
  ExecResult result;
  // Callers in packet loops pass a persistent scratch; vector::assign keeps
  // the old capacity, so re-walking the same function allocates nothing.
  ExecScratch local;
  ExecScratch& s = scratch != nullptr ? *scratch : local;
  s.regs.assign(fn_->num_regs(), 0);
  s.defined.assign(fn_->num_regs(), false);
  std::vector<uint64_t>& regs = s.regs;
  std::vector<bool>& defined = s.defined;

  if (in_spec != nullptr && in_values != nullptr) {
    for (size_t i = 0; i < in_spec->cond_regs.size(); ++i) {
      const ir::Reg r = in_spec->cond_regs[i];
      regs[r] = i < in_values->cond_values.size() ? in_values->cond_values[i]
                                                  : 0;
      defined[r] = true;
    }
    for (size_t i = 0; i < in_spec->var_regs.size(); ++i) {
      const ir::Reg r = in_spec->var_regs[i];
      regs[r] =
          i < in_values->var_values.size() ? in_values->var_values[i] : 0;
      defined[r] = true;
    }
  }

  auto value_of = [&](const ir::Value& v) -> uint64_t {
    return v.is_imm() ? v.imm : regs[v.reg];
  };
  auto set_reg = [&](ir::Reg r, uint64_t v) {
    regs[r] = v & ir::WidthMask(fn_->reg_width(r));
    defined[r] = true;
  };

  // Should this statement execute in this walk?
  auto mine = [&](const ir::Instruction& inst) {
    if (config.plan == nullptr) return true;
    if (inst.op == Opcode::kJump || inst.op == Opcode::kReturn) return true;
    if (inst.op == Opcode::kBranch) return true;  // replicated control flow
    if (config.full_server) {
      // Cache-miss recovery: the server re-runs the whole program except
      // the post partition (which the switch executes on the way out).
      return config.plan->PartOf(inst.id) != Part::kPost ||
             (inst.id < static_cast<ir::InstId>(config.plan->replicable.size()) &&
              config.plan->replicable[inst.id]);
    }
    // Replicable statements (stable header reads) re-execute in every
    // partition that walks past them instead of shipping their values.
    if (inst.id < static_cast<ir::InstId>(config.plan->replicable.size()) &&
        config.plan->replicable[inst.id]) {
      return true;
    }
    return config.plan->PartOf(inst.id) == config.part;
  };

  int block = fn_->entry_block();
  constexpr int kMaxSteps = 1 << 20;  // guards against runaway loops
  int steps = 0;
  bool done = false;

  // The pre pass must not traverse loops: loop bodies are server work
  // (rule 5), so re-entering a block means the path's remaining work
  // belongs to the server.
  const bool is_pre_pass =
      config.plan != nullptr && config.part == Part::kPre;
  std::vector<bool>& visited = s.visited;
  if (is_pre_pass) visited.assign(fn_->num_blocks(), false);

  while (!done) {
    if (is_pre_pass) {
      if (visited[block]) {
        result.needs_server = true;
        break;
      }
      visited[block] = true;
    }
    const ir::BasicBlock& bb = fn_->block(block);
    for (size_t i = 0; i < bb.insts.size(); ++i) {
      const ir::Instruction& inst = bb.insts[i];
      if (++steps > kMaxSteps) {
        result.status = Internal("interpreter step limit exceeded in " +
                                 fn_->name());
        return result;
      }

      // --- Control flow (always traversed) -----------------------------------
      if (inst.op == Opcode::kBranch) {
        const ir::Value& cond = inst.args[0];
        if (cond.is_reg() && !defined[cond.reg]) {
          // The condition is produced by a later partition; every statement
          // beyond this point belongs to the server/post side (§4.2 rules).
          if (config.plan != nullptr && config.part == Part::kPre) {
            result.needs_server = true;
            done = true;
            break;
          }
          if (config.plan != nullptr &&
              config.part == Part::kNonOffloaded) {
            // A condition computed only by the post partition: the label
            // rules guarantee no server statement is control-dependent on
            // it (a server dependent would have stripped the definition's
            // post label), so both arms are empty for this pass — take the
            // false arm deterministically and continue to the join.
            block = inst.target_false;
            break;
          }
          result.status =
              Internal("undefined branch condition %" +
                       fn_->reg_name(cond.reg) + " in " + PartName(config.part));
          return result;
        }
        ++result.stats.branches;
        ++result.stats.insts;
        block = value_of(cond) != 0 ? inst.target_true : inst.target_false;
        break;
      }
      if (inst.op == Opcode::kJump) {
        block = inst.target_true;
        break;
      }
      if (inst.op == Opcode::kReturn) {
        done = true;
        break;
      }

      // --- Partition filtering ------------------------------------------------
      if (!mine(inst)) {
        if (config.plan != nullptr && config.part == Part::kPre &&
            config.plan->PartOf(inst.id) != Part::kPre) {
          // Skipped work owed to the server (or the post pass after it).
          result.needs_server = true;
        }
        continue;
      }

      ++result.stats.insts;
      switch (inst.op) {
        case Opcode::kAssign:
          set_reg(inst.dsts[0], value_of(inst.args[0]));
          ++result.stats.alu_ops;
          break;
        case Opcode::kAlu: {
          const uint64_t a = value_of(inst.args[0]);
          const uint64_t b =
              inst.args.size() > 1 ? value_of(inst.args[1]) : 0;
          // Evaluate at the wider operand width, then narrow to the dst.
          ir::Width w = ir::Width::kU64;
          set_reg(inst.dsts[0], ir::EvalAluOp(inst.alu, a, b, w));
          ++result.stats.alu_ops;
          break;
        }
        case Opcode::kHeaderRead:
          set_reg(inst.dsts[0], ReadHeaderField(pkt, inst.field));
          ++result.stats.header_ops;
          break;
        case Opcode::kHeaderWrite:
          WriteHeaderField(pkt, inst.field, value_of(inst.args[0]));
          ++result.stats.header_ops;
          break;
        case Opcode::kPayloadMatch:
          set_reg(inst.dsts[0],
                  PayloadContains(pkt, fn_->patterns()[inst.pattern]) ? 1 : 0);
          ++result.stats.payload_ops;
          break;
        case Opcode::kPayloadLen:
          set_reg(inst.dsts[0], pkt.payload().size());
          ++result.stats.payload_ops;
          break;
        case Opcode::kMapGet: {
          StateKey& key = s.key;
          key.clear();
          for (const ir::Value& v : inst.args) key.push_back(value_of(v));
          StateValue& values = s.value;
          const bool is_cached_map =
              config.cached_maps != nullptr &&
              inst.state < config.cached_maps->size() &&
              (*config.cached_maps)[inst.state];
          const bool found = state.MapLookup(inst.state, key, &values);
          if (config.plan != nullptr && config.part == Part::kPre &&
              !config.full_server && is_cached_map && !found) {
            // §7 cache mode: a miss in a partial table is not authoritative;
            // abort the pre pass and let the server decide from its full map.
            result.cache_miss_abort = true;
            result.needs_server = true;
            done = true;
            break;
          }
          if (config.full_server && is_cached_map) {
            result.cached_lookups.push_back({inst.state, key});
          }
          set_reg(inst.dsts[0], found ? 1 : 0);
          for (size_t d = 1; d < inst.dsts.size(); ++d) {
            set_reg(inst.dsts[d], d - 1 < values.size() ? values[d - 1] : 0);
          }
          ++result.stats.map_lookups;
          break;
        }
        case Opcode::kMapPut: {
          const auto& decl = fn_->map(inst.state);
          const size_t nkeys = decl.key_widths.size();
          StateKey& key = s.key;
          StateValue& values = s.value;
          key.clear();
          values.clear();
          for (size_t a = 0; a < nkeys; ++a) key.push_back(value_of(inst.args[a]));
          for (size_t a = nkeys; a < inst.args.size(); ++a) {
            values.push_back(value_of(inst.args[a]));
          }
          state.MapInsert(inst.state, key, values);
          ++result.stats.map_updates;
          break;
        }
        case Opcode::kMapDel: {
          StateKey& key = s.key;
          key.clear();
          for (const ir::Value& v : inst.args) key.push_back(value_of(v));
          state.MapErase(inst.state, key);
          ++result.stats.map_updates;
          break;
        }
        case Opcode::kGlobalRead:
          set_reg(inst.dsts[0], state.GlobalRead(inst.state));
          ++result.stats.global_ops;
          break;
        case Opcode::kGlobalWrite:
          state.GlobalWrite(inst.state, value_of(inst.args[0]));
          ++result.stats.global_ops;
          break;
        case Opcode::kVectorGet:
          set_reg(inst.dsts[0],
                  state.VectorGet(inst.state, value_of(inst.args[0])));
          ++result.stats.vector_ops;
          break;
        case Opcode::kVectorLen:
          set_reg(inst.dsts[0], state.VectorSize(inst.state));
          ++result.stats.vector_ops;
          break;
        case Opcode::kTimeRead:
          set_reg(inst.dsts[0], now_ms);
          break;
        case Opcode::kSend:
          if (result.verdict.decided()) {
            result.status = Internal("second send/drop on one path in " +
                                     fn_->name());
            return result;
          }
          result.verdict.kind = Verdict::Kind::kSend;
          result.verdict.egress_port =
              static_cast<uint32_t>(value_of(inst.args[0]));
          break;
        case Opcode::kDrop:
          if (result.verdict.decided()) {
            result.status = Internal("second send/drop on one path in " +
                                     fn_->name());
            return result;
          }
          result.verdict.kind = Verdict::Kind::kDrop;
          break;
        case Opcode::kBranch:
        case Opcode::kJump:
        case Opcode::kReturn:
          break;  // handled above
      }
      if (done) break;  // a cache-miss abort ends the walk mid-block
    }
  }

  if (out_spec != nullptr) {
    for (ir::Reg r : out_spec->cond_regs) {
      result.transfer_out.cond_values.push_back(defined[r] ? regs[r] : 0);
    }
    for (ir::Reg r : out_spec->var_regs) {
      result.transfer_out.var_values.push_back(defined[r] ? regs[r] : 0);
    }
  }
  return result;
}

net::GalliumHeader PackTransfer(const ir::Function& fn,
                                const partition::TransferSpec& spec,
                                const TransferValues& values) {
  net::GalliumHeader header;
  for (size_t i = 0; i < spec.cond_regs.size(); ++i) {
    const uint64_t v =
        i < values.cond_values.size() ? values.cond_values[i] : 0;
    // Truthiness, not the low bit: wide registers used only as branch
    // conditions travel as a single bit.
    if (v != 0) header.cond_bits |= (1u << i);
  }
  for (size_t i = 0; i < spec.var_regs.size(); ++i) {
    const ir::Reg r = spec.var_regs[i];
    const uint64_t v = i < values.var_values.size() ? values.var_values[i] : 0;
    if (ir::BitWidth(fn.reg_width(r)) > 32) {
      header.vars.push_back(static_cast<uint32_t>(v >> 32));
      header.vars.push_back(static_cast<uint32_t>(v & 0xffffffff));
    } else {
      header.vars.push_back(static_cast<uint32_t>(v));
    }
  }
  return header;
}

Result<TransferValues> UnpackTransfer(const ir::Function& fn,
                                      const partition::TransferSpec& spec,
                                      const net::GalliumHeader& header) {
  TransferValues values;
  for (size_t i = 0; i < spec.cond_regs.size(); ++i) {
    values.cond_values.push_back((header.cond_bits >> i) & 1);
  }
  size_t slot = 0;
  for (const ir::Reg r : spec.var_regs) {
    const bool wide = ir::BitWidth(fn.reg_width(r)) > 32;
    const size_t need = wide ? 2 : 1;
    if (slot + need > header.vars.size()) {
      return InvalidArgument("transfer header too short for spec");
    }
    if (wide) {
      values.var_values.push_back(
          (static_cast<uint64_t>(header.vars[slot]) << 32) |
          header.vars[slot + 1]);
    } else {
      values.var_values.push_back(header.vars[slot]);
    }
    slot += need;
  }
  return values;
}

}  // namespace gallium::runtime
