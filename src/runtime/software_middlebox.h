// The software baseline: the whole middlebox program interpreted on a
// server against host state — the FastClick-equivalent configuration the
// paper compares against.
#pragma once

#include <memory>

#include "mbox/middleboxes.h"
#include "runtime/interpreter.h"
#include "runtime/state.h"

namespace gallium::runtime {

class SoftwareMiddlebox {
 public:
  explicit SoftwareMiddlebox(const mbox::MiddleboxSpec& spec);

  struct Outcome {
    Status status = Status::Ok();
    Verdict verdict;
    ExecStats stats;
  };

  // Processes one packet in place (header rewrites apply to `pkt`).
  Outcome Process(net::Packet& pkt, uint64_t now_ms = 0);

  const ir::Function& fn() const { return *fn_; }
  HostStateStore& state() { return state_; }

 private:
  const ir::Function* fn_;
  Interpreter interp_;
  HostStateStore state_;
};

// Applies a spec's initial state (backend lists, firewall rules, redirect
// ports) to a host store.
void ApplyStateInit(const mbox::MiddleboxSpec& spec, HostStateStore* store);

}  // namespace gallium::runtime
