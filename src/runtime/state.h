// Runtime state backends.
//
// The interpreter executes IR statements against a StateBackend; the server
// uses plain in-memory containers (HostStateStore) while the switch data
// plane uses match-action tables and registers with write-back semantics
// (switchsim::SwitchStateBackend). Both implement the same interface so the
// semantics of a map lookup are identical on either device.
//
// Exact-match maps live on flat cuckoo flow tables (state::FlowTable):
// inline key/value storage, O(1) lookups, incremental resize — sized for
// 10M+ concurrent flows. LPM maps keep the ordered-map representation (the
// lookup is a longest-prefix probe ladder, not a hash). Iteration over a
// flow table is UNORDERED; any consumer that needs determinism goes through
// map_contents(), which returns an explicitly sorted snapshot.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "ir/function.h"
#include "state/flow_table.h"
#include "util/status.h"

namespace gallium::runtime {

using StateKey = std::vector<uint64_t>;
using StateValue = std::vector<uint64_t>;

class StateBackend {
 public:
  virtual ~StateBackend() = default;

  // Map operations. Lookup fills `values` (decl-sized) and returns presence;
  // on a miss `values` is zero-filled (the IR's defined miss semantics).
  virtual bool MapLookup(ir::StateIndex map, const StateKey& key,
                         StateValue* values) = 0;
  virtual void MapInsert(ir::StateIndex map, const StateKey& key,
                         const StateValue& values) = 0;
  virtual void MapErase(ir::StateIndex map, const StateKey& key) = 0;

  virtual uint64_t VectorGet(ir::StateIndex vec, uint64_t index) = 0;
  virtual uint64_t VectorSize(ir::StateIndex vec) = 0;

  virtual uint64_t GlobalRead(ir::StateIndex global) = 0;
  virtual void GlobalWrite(ir::StateIndex global, uint64_t value) = 0;
};

// Alternate home for a single global register. When execution is sharded
// across worker cores, replicated globals cannot live in each shard's
// private store — every worker must observe the same value for the sync
// core's inline output commit to stay correct. The engine parks those
// globals in one shared hub and delegates each shard's accesses to it.
class GlobalOverlay {
 public:
  virtual ~GlobalOverlay() = default;
  virtual uint64_t Read(ir::StateIndex global) const = 0;
  virtual void Write(ir::StateIndex global, uint64_t value) = 0;
};

// Plain in-memory state for a host (the FastClick baseline and the
// non-offloaded server partition).
class HostStateStore : public StateBackend {
 public:
  // `flow_capacity` preallocates each exact-match map's flow table for that
  // many entries (galliumc --flow-capacity); 0 picks a small default and
  // lets the tables grow incrementally under churn.
  explicit HostStateStore(const ir::Function& fn, uint64_t flow_capacity = 0);

  bool MapLookup(ir::StateIndex map, const StateKey& key,
                 StateValue* values) override;
  void MapInsert(ir::StateIndex map, const StateKey& key,
                 const StateValue& values) override;
  void MapErase(ir::StateIndex map, const StateKey& key) override;
  uint64_t VectorGet(ir::StateIndex vec, uint64_t index) override;
  uint64_t VectorSize(ir::StateIndex vec) override;
  uint64_t GlobalRead(ir::StateIndex global) override;
  void GlobalWrite(ir::StateIndex global, uint64_t value) override;

  // Deterministic (sorted) snapshot of one map's contents, for tests,
  // serialization, and equivalence checks. Flow-table iteration order is
  // arbitrary; this is the explicit sort that keeps snapshot comparisons
  // stable. O(n log n) and allocating — never on the packet path.
  std::map<StateKey, StateValue> map_contents(ir::StateIndex map) const;

  // Unordered visit of one map's entries without materializing a snapshot
  // (resync paths). The key/value references are only valid inside `fn`.
  void ForEachMapEntry(
      ir::StateIndex map,
      const std::function<void(const StateKey&, const StateValue&)>& fn) const;

  // The flat flow table backing an exact-match map — batched-aging sweeps
  // and benches reach through this. Null for LPM maps.
  state::FlowTable* flow_table(ir::StateIndex map) {
    return maps_[map].flat.get();
  }
  const state::FlowTable* flow_table(ir::StateIndex map) const {
    return maps_[map].flat.get();
  }

  std::vector<uint64_t>& vector_contents(ir::StateIndex vec) {
    return vectors_[vec];
  }
  const std::vector<uint64_t>& vector_contents(ir::StateIndex vec) const {
    return vectors_[vec];
  }
  uint64_t global_value(ir::StateIndex g) const {
    if (g < delegated_.size() && delegated_[g] != nullptr) {
      return delegated_[g]->Read(g);
    }
    return globals_[g];
  }

  // Re-homes one global into `overlay`: all reads and writes (including
  // global_value, which the resync path uses) go through it from now on.
  // The overlay is seeded with the store's current value.
  void DelegateGlobal(ir::StateIndex g, GlobalOverlay* overlay);

  size_t MapSize(ir::StateIndex map) const {
    const MapStore& ms = maps_[map];
    return ms.flat != nullptr ? ms.flat->size() : ms.lpm.size();
  }

 private:
  // Exact maps sit on the flat cuckoo table; LPM maps keep the ordered map
  // (entries are {prefix, prefix_len} pairs probed most-specific-first).
  struct MapStore {
    std::unique_ptr<state::FlowTable> flat;
    std::map<StateKey, StateValue> lpm;
  };

  const ir::Function* fn_;
  std::vector<MapStore> maps_;
  std::vector<std::vector<uint64_t>> vectors_;
  std::vector<uint64_t> globals_;
  std::vector<GlobalOverlay*> delegated_;
  StateKey lpm_key_;  // lookup scratch: LPM probes must not allocate
};

// Wraps another backend and records every mutation to a watched subset of
// state objects — used by the offloaded runtime to build the control-plane
// update batch that synchronizes replicated state to the switch (§4.3.3).
class RecordingStateBackend : public StateBackend {
 public:
  struct MapMutation {
    ir::StateIndex map;
    StateKey key;
    StateValue values;  // empty = deletion
    bool is_erase = false;
  };
  struct GlobalMutation {
    ir::StateIndex global;
    uint64_t value;
  };

  RecordingStateBackend(StateBackend* inner,
                        std::vector<bool> watched_maps,
                        std::vector<bool> watched_globals)
      : inner_(inner),
        watched_maps_(std::move(watched_maps)),
        watched_globals_(std::move(watched_globals)) {}

  bool MapLookup(ir::StateIndex map, const StateKey& key,
                 StateValue* values) override {
    return inner_->MapLookup(map, key, values);
  }
  void MapInsert(ir::StateIndex map, const StateKey& key,
                 const StateValue& values) override {
    inner_->MapInsert(map, key, values);
    if (map < watched_maps_.size() && watched_maps_[map]) {
      map_mutations_.push_back(MapMutation{map, key, values, false});
    }
  }
  void MapErase(ir::StateIndex map, const StateKey& key) override {
    inner_->MapErase(map, key);
    if (map < watched_maps_.size() && watched_maps_[map]) {
      map_mutations_.push_back(MapMutation{map, key, {}, true});
    }
  }
  uint64_t VectorGet(ir::StateIndex vec, uint64_t index) override {
    return inner_->VectorGet(vec, index);
  }
  uint64_t VectorSize(ir::StateIndex vec) override {
    return inner_->VectorSize(vec);
  }
  uint64_t GlobalRead(ir::StateIndex global) override {
    return inner_->GlobalRead(global);
  }
  void GlobalWrite(ir::StateIndex global, uint64_t value) override {
    inner_->GlobalWrite(global, value);
    if (global < watched_globals_.size() && watched_globals_[global]) {
      global_mutations_.push_back(GlobalMutation{global, value});
    }
  }

  const std::vector<MapMutation>& map_mutations() const {
    return map_mutations_;
  }
  const std::vector<GlobalMutation>& global_mutations() const {
    return global_mutations_;
  }
  bool HasMutations() const {
    return !map_mutations_.empty() || !global_mutations_.empty();
  }
  void Clear() {
    map_mutations_.clear();
    global_mutations_.clear();
  }

 private:
  StateBackend* inner_;
  std::vector<bool> watched_maps_;
  std::vector<bool> watched_globals_;
  std::vector<MapMutation> map_mutations_;
  std::vector<GlobalMutation> global_mutations_;
};

}  // namespace gallium::runtime
