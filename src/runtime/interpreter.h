// The IR interpreter: executes a middlebox program (whole, or one partition
// of it) against a packet and a state backend.
//
// Running the whole function against host state is the FastClick-equivalent
// software baseline. Running one partition reproduces the generated code's
// behavior: the pre pass on the switch (stopping where server work begins
// and packing the transfer header), the server pass (consuming the transfer
// header), and the post pass on the switch (consuming the return header).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.h"
#include "net/packet.h"
#include "partition/plan.h"
#include "runtime/state.h"
#include "telemetry/trace.h"
#include "util/inline_vec.h"
#include "util/status.h"

namespace gallium::runtime {

struct Verdict {
  enum class Kind : uint8_t { kNone, kSend, kDrop };
  Kind kind = Kind::kNone;
  uint32_t egress_port = 0;

  bool decided() const { return kind != Kind::kNone; }
  bool operator==(const Verdict&) const = default;
};

// Runtime form of the synthesized transfer header: values parallel to a
// TransferSpec's cond_regs / var_regs lists. Inline storage: the pre pass
// fills one of these per packet even on the fast path, so it must not
// heap-allocate (conditions are capped at 32; var lists are bounded by the
// transfer-byte constraint).
struct TransferValues {
  InlineVec<uint64_t, 32> cond_values;
  InlineVec<uint64_t, 32> var_values;
};

// Reusable per-walk buffers. The interpreter's register file and block-visit
// set are sized by the function, not the packet; a caller that processes
// packets in a loop passes one of these so the hot path allocates nothing.
// Null scratch falls back to walk-local buffers (one-shot callers).
struct ExecScratch {
  std::vector<uint64_t> regs;
  std::vector<bool> defined;
  std::vector<bool> visited;
  StateKey key;
  StateValue value;
};

// Execution counters; the performance model converts these to cycles.
struct ExecStats {
  int insts = 0;
  int alu_ops = 0;
  int header_ops = 0;
  int map_lookups = 0;
  int map_updates = 0;
  int vector_ops = 0;
  int global_ops = 0;
  int payload_ops = 0;
  int branches = 0;

  ExecStats& operator+=(const ExecStats& other);
};

// Bridge into the telemetry vocabulary: the same counts, field for field,
// in the leaf-library mirror that traces and registry recorders carry.
// Runs once per pipeline pass on the packet hot path, hence inline.
inline telemetry::OpCounts ToOpCounts(const ExecStats& stats) {
  telemetry::OpCounts counts;
  counts.insts = stats.insts;
  counts.alu_ops = stats.alu_ops;
  counts.header_ops = stats.header_ops;
  counts.map_lookups = stats.map_lookups;
  counts.map_updates = stats.map_updates;
  counts.vector_ops = stats.vector_ops;
  counts.global_ops = stats.global_ops;
  counts.payload_ops = stats.payload_ops;
  counts.branches = stats.branches;
  return counts;
}
// Inverse bridge (cost-model helpers take ExecStats; trace hops carry
// OpCounts). Counts are clamped into int range on the way back.
ExecStats FromOpCounts(const telemetry::OpCounts& counts);

struct ExecResult {
  Status status = Status::Ok();
  Verdict verdict;
  // Pre pass only: the path owes non-offloaded (or post) work, so the
  // packet must be forwarded to the server.
  bool needs_server = false;
  // Pre pass with cached tables (§7): a lookup missed in a partial cache,
  // so the result is not authoritative — the pre pass aborted and the
  // server must process the packet from scratch.
  bool cache_miss_abort = false;
  ExecStats stats;
  // Filled when an out-spec is provided.
  TransferValues transfer_out;
  // Keys this walk looked up in cached maps (server-full pass only): the
  // runtime re-installs the hot entries into the switch cache.
  std::vector<std::pair<ir::StateIndex, StateKey>> cached_lookups;
};

class Interpreter {
 public:
  explicit Interpreter(const ir::Function& fn);

  const ir::Function& function() const { return *fn_; }

  // Executes the complete program (software baseline semantics).
  ExecResult Run(net::Packet& pkt, StateBackend& state, uint64_t now_ms,
                 ExecScratch* scratch = nullptr) const;

  // Executes one partition. `in_spec`/`in_values` describe the incoming
  // transfer header (null for the pre pass); `out_spec` the outgoing one.
  // `cached_maps` (pre pass only) marks maps whose switch tables are
  // partial caches: a miss aborts the pass (§7 memory-reduction mode).
  ExecResult RunPartition(net::Packet& pkt, StateBackend& state,
                          uint64_t now_ms,
                          const partition::PartitionPlan& plan,
                          partition::Part part,
                          const partition::TransferSpec* in_spec,
                          const TransferValues* in_values,
                          const partition::TransferSpec* out_spec,
                          const std::vector<bool>* cached_maps = nullptr,
                          ExecScratch* scratch = nullptr) const;

  // Cache-miss recovery pass (§7): runs everything except the post
  // partition against authoritative server state, recording which keys were
  // looked up in cached maps so the runtime can refresh the switch cache.
  ExecResult RunServerFull(net::Packet& pkt, StateBackend& state,
                           uint64_t now_ms,
                           const partition::PartitionPlan& plan,
                           const partition::TransferSpec* out_spec,
                           const std::vector<bool>& cached_maps,
                           ExecScratch* scratch = nullptr) const;

  // Header-field accessors shared with the switch simulator.
  static uint64_t ReadHeaderField(const net::Packet& pkt, ir::HeaderField f);
  static void WriteHeaderField(net::Packet& pkt, ir::HeaderField f,
                               uint64_t value);

 private:
  struct WalkConfig {
    const partition::PartitionPlan* plan = nullptr;  // null = run everything
    partition::Part part = partition::Part::kPre;
    // Cache mode: pre pass aborts on misses in these maps; the server-full
    // pass records lookups into them.
    const std::vector<bool>* cached_maps = nullptr;
    // Server recovery mode: execute every statement except post-tagged ones.
    bool full_server = false;
  };

  ExecResult Walk(net::Packet& pkt, StateBackend& state, uint64_t now_ms,
                  const WalkConfig& config,
                  const partition::TransferSpec* in_spec,
                  const TransferValues* in_values,
                  const partition::TransferSpec* out_spec,
                  ExecScratch* scratch) const;

  const ir::Function* fn_;
};

// Packs runtime transfer values into the wire-format Gallium header and
// back, following the spec's slot layout.
net::GalliumHeader PackTransfer(const ir::Function& fn,
                                const partition::TransferSpec& spec,
                                const TransferValues& values);
Result<TransferValues> UnpackTransfer(const ir::Function& fn,
                                      const partition::TransferSpec& spec,
                                      const net::GalliumHeader& header);

}  // namespace gallium::runtime
