// Fault injection for the offloaded runtime.
//
// Real switch<->server substrates lose, duplicate, reorder, and corrupt both
// data packets and control-plane messages, and switches restart. The seed
// runtime modeled that channel as perfect; this layer makes the imperfection
// explicit and reproducible so the recovery paths in OffloadedMiddlebox can
// be exercised deterministically (differential chaos testing in the style of
// Gauntlet's compiler stress testing).
//
// A FaultPlan is pure data: per-direction data-plane fault rates, control-
// plane loss/delay rates, scheduled switch restarts, and sustained outage
// windows, all keyed to a seed. A FaultInjector is the runtime object built
// from a plan: it owns the dice and the two FaultyChannels and is consulted
// by the runtime at each hazard point. Identical plan + identical traffic =>
// identical fault schedule.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace gallium::runtime {

// Per-direction data-plane fault rates, each an independent probability
// applied to every frame crossing the link.
struct ChannelFaults {
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;  // hold the frame back; deliver after the next one
  double corrupt = 0.0;  // flip bytes in flight (caught by the frame checksum)

  bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0;
  }
};

// Control-plane fault rates for the sync path.
struct SyncFaults {
  double batch_drop = 0.0;    // batch lost on the way to the switch
  double ack_drop = 0.0;      // batch applied but the ack is lost
  double delay_prob = 0.0;    // batch delayed (adds latency, still delivered)
  double delay_us_mean = 200.0;

  bool any() const {
    return batch_drop > 0 || ack_drop > 0 || delay_prob > 0;
  }
};

// A complete, seeded fault schedule for one run.
struct FaultPlan {
  uint64_t seed = 0;
  ChannelFaults to_server;  // switch -> server data frames
  ChannelFaults to_switch;  // server -> switch data frames
  SyncFaults sync;
  // Restart the switch (losing all switch state) immediately before
  // processing the packet with this zero-based index.
  std::vector<uint64_t> restart_at_packets;
  // Sustained outages: while a packet's index falls in [first, second), the
  // switch is unreachable and the runtime must degrade to software-only
  // processing.
  std::vector<std::pair<uint64_t, uint64_t>> outages;

  bool HasDataFaults() const { return to_server.any() || to_switch.any(); }
  std::string ToString() const;
};

// Randomized plan generator for the chaos harness. Deterministic in `seed`:
// fault rates are drawn from bounded ranges, every third seed schedules one
// or two mid-run restarts, and every fourth seed opens a sustained outage
// window (~15% of the run), so any contiguous block of seeds exercises both
// recovery paths.
FaultPlan MakeRandomFaultPlan(uint64_t seed, uint64_t num_packets);

// A lossy frame pipe. Send() subjects the frame to the configured faults;
// Receive() pops the next delivered frame (nullopt when the queue is empty
// — e.g. the frame was dropped or is being held back for reordering).
class FaultyChannel {
 public:
  FaultyChannel(ChannelFaults faults, Rng* rng)
      : faults_(faults), rng_(rng) {}

  void Send(std::vector<uint8_t> frame);
  std::optional<std::vector<uint8_t>> Receive();

  // True while a frame is held back for reordering (it is released behind
  // the next frame entering the channel).
  bool has_held() const { return held_.has_value(); }

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t frames_dropped() const { return frames_dropped_; }
  uint64_t frames_duplicated() const { return frames_duplicated_; }
  uint64_t frames_reordered() const { return frames_reordered_; }
  uint64_t frames_corrupted() const { return frames_corrupted_; }

 private:
  ChannelFaults faults_;
  Rng* rng_;
  std::deque<std::vector<uint8_t>> queue_;
  // At most one frame is held back for reordering; it is released behind
  // the next frame that enters the channel.
  std::optional<std::vector<uint8_t>> held_;

  uint64_t frames_sent_ = 0;
  uint64_t frames_dropped_ = 0;
  uint64_t frames_duplicated_ = 0;
  uint64_t frames_reordered_ = 0;
  uint64_t frames_corrupted_ = 0;
};

// Runtime face of a FaultPlan: owns the dice and the data channels, answers
// the runtime's hazard-point queries.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  // True while `packet_index` falls inside a scheduled outage window.
  bool SwitchDown(uint64_t packet_index) const;
  // True exactly once per scheduled restart, when its packet index arrives.
  bool TakeRestart(uint64_t packet_index);

  // Control-plane dice.
  bool DropBatch() { return rng_.NextBool(plan_.sync.batch_drop); }
  bool DropAck() { return rng_.NextBool(plan_.sync.ack_drop); }
  double SyncDelayUs() {
    if (!rng_.NextBool(plan_.sync.delay_prob)) return 0.0;
    return rng_.NextExponential(plan_.sync.delay_us_mean);
  }

  FaultyChannel& to_server() { return to_server_; }
  FaultyChannel& to_switch() { return to_switch_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  Rng channel_rng_;  // independent stream so data faults don't perturb sync dice
  FaultyChannel to_server_;
  FaultyChannel to_switch_;
  size_t next_restart_ = 0;
};

// Frame codec for the reliable data link: [seq:8][fnv1a-64 checksum:8][wire
// bytes]. The checksum covers seq + payload, so in-flight corruption of any
// byte is detected and the frame treated as lost.
std::vector<uint8_t> EncodeDataFrame(uint64_t seq,
                                     const std::vector<uint8_t>& wire);
// Returns false when the frame is truncated or fails its checksum.
bool DecodeDataFrame(const std::vector<uint8_t>& frame, uint64_t* seq,
                     std::vector<uint8_t>* wire);

}  // namespace gallium::runtime
