// Fault injection for the offloaded runtime.
//
// Real switch<->server substrates lose, duplicate, reorder, and corrupt both
// data packets and control-plane messages, and switches restart. The seed
// runtime modeled that channel as perfect; this layer makes the imperfection
// explicit and reproducible so the recovery paths in OffloadedMiddlebox can
// be exercised deterministically (differential chaos testing in the style of
// Gauntlet's compiler stress testing).
//
// A FaultPlan is pure data: per-direction data-plane fault rates, control-
// plane loss/delay rates, scheduled switch restarts, and sustained outage
// windows, all keyed to a seed. A FaultInjector is the runtime object built
// from a plan: it owns the dice and the two FaultyChannels and is consulted
// by the runtime at each hazard point. Identical plan + identical traffic =>
// identical fault schedule.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace gallium::runtime {

// Per-direction data-plane fault rates, each an independent probability
// applied to every frame crossing the link.
struct ChannelFaults {
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;  // hold the frame back; deliver after the next one
  double corrupt = 0.0;  // flip bytes in flight (caught by the frame checksum)

  bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0;
  }
};

// Control-plane fault rates for the sync path.
struct SyncFaults {
  double batch_drop = 0.0;    // batch lost on the way to the switch
  double ack_drop = 0.0;      // batch applied but the ack is lost
  double delay_prob = 0.0;    // batch delayed (adds latency, still delivered)
  double delay_us_mean = 200.0;

  bool any() const {
    return batch_drop > 0 || ack_drop > 0 || delay_prob > 0;
  }
};

// A windowed grey failure: the switch stays formally reachable but behaves
// badly for every packet whose index falls in [start, end). Unlike the
// binary outage windows, these are the faults a naive failure detector
// flaps on — the control plane answers, just slowly or lossily — so they
// are what the watchdog's hysteresis exists for.
struct GreyWindow {
  enum class Kind : uint8_t {
    kLatencySpike,    // control-plane latency multiplied/offset
    kSlowSwitch,      // sustained slow switch: latency up + probes lossy
    kAsymmetricLoss,  // heavy loss on one data direction only
    kBurstLoss,       // short near-total loss burst on both directions
  };
  Kind kind = Kind::kLatencySpike;
  uint64_t start = 0, end = 0;  // [start, end) in packet indices

  double latency_factor = 1.0;   // multiplies sync/probe latency
  double extra_delay_us = 0.0;   // added to every sync/probe round-trip
  double probe_miss = 0.0;       // P(heartbeat probe lost)
  double sync_drop = 0.0;        // extra batch/ack loss on the control plane
  double drop_to_server = 0.0;   // extra drop on switch->server data frames
  double drop_to_switch = 0.0;   // extra drop on server->switch data frames

  bool Active(uint64_t packet_index) const {
    return packet_index >= start && packet_index < end;
  }
};

const char* GreyWindowKindName(GreyWindow::Kind kind);

// A complete, seeded fault schedule for one run.
struct FaultPlan {
  uint64_t seed = 0;
  ChannelFaults to_server;  // switch -> server data frames
  ChannelFaults to_switch;  // server -> switch data frames
  SyncFaults sync;
  // Restart the switch (losing all switch state) immediately before
  // processing the packet with this zero-based index.
  std::vector<uint64_t> restart_at_packets;
  // Sustained outages: while a packet's index falls in [first, second), the
  // switch is unreachable and the runtime must degrade to software-only
  // processing.
  std::vector<std::pair<uint64_t, uint64_t>> outages;
  // Grey failures layered on top of the base rates (see GreyWindow).
  std::vector<GreyWindow> grey_windows;

  bool HasDataFaults() const { return to_server.any() || to_switch.any(); }
  std::string ToString() const;
};

// Randomized plan generator for the chaos harness. Deterministic in `seed`:
// fault rates are drawn from bounded ranges, every third seed schedules one
// or two mid-run restarts, and every fourth seed opens a sustained outage
// window (~15% of the run), so any contiguous block of seeds exercises both
// recovery paths.
FaultPlan MakeRandomFaultPlan(uint64_t seed, uint64_t num_packets);

// Overload-flavored plan: clean data links but a congested control plane —
// elevated batch/ack loss plus burst-loss and asymmetric-loss windows — the
// regime that grows the sync backlog under flow churn.
FaultPlan MakeOverloadFaultPlan(uint64_t seed, uint64_t num_packets);

// Grey-failure-flavored plan: no hard outages; instead latency-spike and
// slow-switch windows (plus lossy probes) that an un-hysteretic failure
// detector would flap on.
FaultPlan MakeGreyFailureFaultPlan(uint64_t seed, uint64_t num_packets);

// Parses "<kind>:<seed>" where kind ∈ {random, overload, grey} into the
// corresponding generated plan — the reproduction handle chaos failures
// print and galliumc --fault-plan accepts.
Result<FaultPlan> FaultPlanFromSpec(const std::string& spec,
                                    uint64_t num_packets);

// A lossy frame pipe. Send() subjects the frame to the configured faults;
// Receive() pops the next delivered frame (nullopt when the queue is empty
// — e.g. the frame was dropped or is being held back for reordering).
class FaultyChannel {
 public:
  FaultyChannel(ChannelFaults faults, Rng* rng)
      : faults_(faults), rng_(rng) {}

  void Send(std::vector<uint8_t> frame);
  std::optional<std::vector<uint8_t>> Receive();

  // Releases a frame held back for reordering into the delivery queue.
  // Called at channel drain/shutdown: a reordered frame is late, never
  // lost — without this, a frame held when the run ends would silently
  // vanish and the channel's conservation accounting would not balance.
  void Drain();

  // Extra drop probability layered on the configured rate (active grey
  // window); applied as min(1, drop + boost) per frame.
  void set_drop_boost(double boost) { drop_boost_ = boost; }
  double drop_boost() const { return drop_boost_; }

  // True while a frame is held back for reordering (it is released behind
  // the next frame entering the channel, or by Drain()).
  bool has_held() const { return held_.has_value(); }

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t frames_dropped() const { return frames_dropped_; }
  uint64_t frames_duplicated() const { return frames_duplicated_; }
  uint64_t frames_reordered() const { return frames_reordered_; }
  uint64_t frames_corrupted() const { return frames_corrupted_; }

 private:
  ChannelFaults faults_;
  Rng* rng_;
  double drop_boost_ = 0.0;
  std::deque<std::vector<uint8_t>> queue_;
  // At most one frame is held back for reordering; it is released behind
  // the next frame that enters the channel.
  std::optional<std::vector<uint8_t>> held_;

  uint64_t frames_sent_ = 0;
  uint64_t frames_dropped_ = 0;
  uint64_t frames_duplicated_ = 0;
  uint64_t frames_reordered_ = 0;
  uint64_t frames_corrupted_ = 0;
};

// Runtime face of a FaultPlan: owns the dice and the data channels, answers
// the runtime's hazard-point queries.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  // True while `packet_index` falls inside a scheduled outage window.
  bool SwitchDown(uint64_t packet_index) const;
  // True exactly once per scheduled restart, when its packet index arrives.
  bool TakeRestart(uint64_t packet_index);

  // Activates the grey windows covering `packet_index`: folds their extra
  // loss into the data channels' drop boosts and caches the control-plane
  // latency/loss effects the dice below consult. Call once per packet,
  // before any hazard point fires.
  void BeginPacket(uint64_t packet_index);

  // Control-plane dice. Batch/ack loss honors the active grey window's
  // extra sync_drop on top of the plan's base rates.
  bool DropBatch() {
    return rng_.NextBool(std::min(1.0, plan_.sync.batch_drop + grey_sync_drop_));
  }
  bool DropAck() {
    return rng_.NextBool(std::min(1.0, plan_.sync.ack_drop + grey_sync_drop_));
  }
  double SyncDelayUs() {
    double delay = grey_extra_delay_us_;
    if (rng_.NextBool(plan_.sync.delay_prob)) {
      delay += rng_.NextExponential(plan_.sync.delay_us_mean);
    }
    return delay;
  }

  // Grey-failure surface for the watchdog/sync paths: multiplier applied to
  // modeled control-plane/probe latencies, and the heartbeat-loss dice.
  double LatencyFactor() const { return grey_latency_factor_; }
  double ExtraDelayUs() const { return grey_extra_delay_us_; }
  bool ProbeMiss() { return rng_.NextBool(grey_probe_miss_); }
  // True while any grey window covers the current packet.
  bool InGreyWindow() const { return grey_active_; }

  FaultyChannel& to_server() { return to_server_; }
  FaultyChannel& to_switch() { return to_switch_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  Rng channel_rng_;  // independent stream so data faults don't perturb sync dice
  FaultyChannel to_server_;
  FaultyChannel to_switch_;
  size_t next_restart_ = 0;

  // Effects of the grey windows covering the current packet (BeginPacket).
  bool grey_active_ = false;
  double grey_latency_factor_ = 1.0;
  double grey_extra_delay_us_ = 0.0;
  double grey_probe_miss_ = 0.0;
  double grey_sync_drop_ = 0.0;
};

// Frame codec for the reliable data link: [seq:8][fnv1a-64 checksum:8][wire
// bytes]. The checksum covers seq + payload, so in-flight corruption of any
// byte is detected and the frame treated as lost.
std::vector<uint8_t> EncodeDataFrame(uint64_t seq,
                                     const std::vector<uint8_t>& wire);
// Returns false when the frame is truncated or fails its checksum.
bool DecodeDataFrame(const std::vector<uint8_t>& frame, uint64_t* seq,
                     std::vector<uint8_t>* wire);

}  // namespace gallium::runtime
