// Health watchdog for the offloaded runtime.
//
// The seed runtime had perfect failure knowledge: the fault injector told
// it, per packet, whether the switch was down. Real deployments only get
// evidence — heartbeat probes and sync outcomes — and grey failures (a
// switch that answers slowly, or drops every third probe) make that
// evidence noisy. A detector that degrades on the first miss and recovers
// on the first success flaps between offloaded and software-only mode on
// every noise spike, paying a full state resync per flap.
//
// The watchdog is a φ-style failure detector with hysteresis:
//
//   * evidence:  consecutive probe/sync misses, and an EWMA of observed
//                control-plane latency;
//   * entry:     degrade when misses >= miss_enter_threshold OR the latency
//                EWMA crosses latency_enter_us;
//   * exit:      arm recovery only after ok_exit_threshold consecutive
//                successes AND the EWMA back under latency_exit_us
//                (latency_exit_us < latency_enter_us: the two thresholds
//                must be crossed in opposite directions — classic
//                Schmitt-trigger hysteresis);
//   * dwell:     a mode switch is refused until min_dwell_packets have been
//                processed in the current mode, bounding the transition
//                rate no matter how adversarial the fault schedule is.
//
// Recovery is two-phase (offloaded -> degraded -> resync -> offloaded): on
// exit the watchdog parks in kResyncPending; the runtime rebuilds the
// switch from the authoritative host store and only then reports
// kOffloaded. Intermittent faults therefore cost at most one resync per
// dwell period.
#pragma once

#include <cstdint>
#include <string>

namespace gallium::telemetry {
class FlightRecorder;
}  // namespace gallium::telemetry

namespace gallium::runtime {

struct HealthOptions {
  bool enabled = false;
  // Probe the switch every this-many packets while offloaded (and every
  // packet while degraded, so recovery is prompt).
  uint64_t probe_interval_packets = 4;
  // Consecutive probe/sync misses that enter degraded mode.
  int miss_enter_threshold = 3;
  // Consecutive successes required before recovery arms.
  int ok_exit_threshold = 4;
  // Latency EWMA thresholds (entry above, exit below; exit < entry).
  double latency_enter_us = 2000.0;
  double latency_exit_us = 800.0;
  // EWMA smoothing factor for observed probe/sync latency.
  double ewma_alpha = 0.3;
  // Minimum packets spent in a mode before the next transition.
  uint64_t min_dwell_packets = 32;
  // Flight recorder for mode-transition / probe-miss events (null = none;
  // the offloaded runtime wires its own lane through here).
  telemetry::FlightRecorder* recorder = nullptr;
  uint16_t flight_lane = 0;
};

class HealthWatchdog {
 public:
  enum class Mode : uint8_t {
    kOffloaded,      // switch healthy; packets use the pipeline
    kDegraded,       // software-only; switch quarantined
    kResyncPending,  // health recovered; awaiting the state rebuild
  };

  explicit HealthWatchdog(HealthOptions options) : options_(options) {}

  Mode mode() const { return mode_; }
  // Advances the per-packet clock; returns true when this packet should
  // carry a heartbeat probe.
  bool OnPacket();

  // Feeds one piece of evidence (a heartbeat outcome or a sync delivery
  // outcome) into the detector and runs the mode machine.
  void RecordObservation(bool success, double latency_us);

  // The runtime finished rebuilding the switch from the host store;
  // kResyncPending -> kOffloaded.
  void NotifyResynced();

  double latency_ewma_us() const { return ewma_us_; }
  int consecutive_misses() const { return consecutive_misses_; }
  int consecutive_successes() const { return consecutive_successes_; }
  // Mode changes of any kind — the bounded-flapping quantity the soak
  // harness asserts on.
  uint64_t transitions() const { return transitions_; }
  uint64_t probes_sent() const { return probes_sent_; }
  uint64_t probes_missed() const { return probes_missed_; }

  static const char* ModeName(Mode mode);

 private:
  bool DwellElapsed() const {
    return packets_in_mode_ >= options_.min_dwell_packets;
  }
  void SwitchMode(Mode next);

  HealthOptions options_;
  Mode mode_ = Mode::kOffloaded;
  double ewma_us_ = 0.0;
  bool ewma_primed_ = false;
  int consecutive_misses_ = 0;
  int consecutive_successes_ = 0;
  uint64_t packets_in_mode_ = 0;
  uint64_t packets_since_probe_ = 0;
  uint64_t transitions_ = 0;
  uint64_t probes_sent_ = 0;
  uint64_t probes_missed_ = 0;
};

}  // namespace gallium::runtime
