// The offloaded middlebox: the composition Gallium deploys (Fig. 1) —
// a programmable switch running the pre/post partitions and a middlebox
// server running the non-offloaded partition, glued by the synthesized
// transfer header, atomic state synchronization, and output commit
// (§4.3.2–4.3.3).
//
// Per-packet flow:
//   1. The switch executes the pre-processing pass. If the packet's path
//      owes no server work, the packet is emitted — the fast path.
//   2. Otherwise the switch packs live temporaries and branch-condition bits
//      into the Gallium header and forwards the packet to the server (in
//      wire format; the transfer header is parsed back on the other side).
//   3. The server executes the non-offloaded pass. Mutations to replicated
//      state are recorded; if any happened, a control-plane batch applies
//      them to the switch atomically (write-back tables + bit flip) and the
//      packet is buffered until the update completes (output commit).
//   4. The packet returns to the switch, which executes the post-processing
//      pass and emits per the recorded verdict.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "mbox/middleboxes.h"
#include "partition/partitioner.h"
#include "rmt/feedback.h"
#include "runtime/fault.h"
#include "runtime/health.h"
#include "runtime/interpreter.h"
#include "runtime/software_middlebox.h"
#include "runtime/state.h"
#include "runtime/sync.h"
#include "runtime/sync_queue.h"
#include "switchsim/switch.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/rng.h"

namespace gallium::runtime {

struct OffloadedOptions {
  partition::SwitchConstraints constraints;
  // Cross the switch<->server links in wire format (serialize + reparse).
  // Disable only in throughput loops where the copy cost matters.
  bool serialize_wire = true;
  uint64_t rng_seed = 42;

  // §7 "Reducing memory usage of programmable switches": when > 0, each
  // replicated map's switch table holds at most this many entries (FIFO
  // eviction) — a cache of the server's authoritative map. A lookup miss in
  // a partial table is not authoritative, so the pre pass aborts and the
  // server reprocesses the packet from scratch, then refreshes the cache.
  uint64_t cache_entries_per_table = 0;

  // Pre-sizes every exact-match host map's flow table for this many
  // entries (galliumc --flow-capacity). 0 = start small and grow
  // incrementally under churn. Sizing up front avoids mid-run resize
  // migrations when the flow population is known (e.g. 10M-flow runs).
  uint64_t flow_capacity = 0;

  // Fault injection: when set, the switch<->server data links run framed
  // (seq + checksum, retransmit + dedup) through the plan's FaultyChannels,
  // the control-plane sync path is subject to the plan's loss/delay rates,
  // and the scheduled restarts/outages fire. Null = perfect substrate.
  // The plan must outlive the middlebox.
  const FaultPlan* fault_plan = nullptr;
  // Retry/backoff policy for the reliable sync client and the data link.
  SyncPolicy sync_policy;

  // Overload handling: when sync_queue.enabled(), replicated *map*
  // mutations are enqueued into a bounded coalescing backlog (relaxed
  // output commit; the host store stays authoritative and a stale switch
  // miss falls through to the server) and drained as one coalesced
  // control-plane batch every pump_interval_packets. Batches carrying a
  // replicated-global mutation keep strict output commit — register reads
  // have no miss path, so their staleness would be undetectable. At the
  // bound, the overflow policy either drains inline (backpressure) or
  // refuses the packet at ingress (explicit shedding, Outcome::shed).
  // Disabled = the legacy inline blocking sync path.
  SyncQueueOptions sync_queue;
  // Health watchdog: when health.enabled, degraded-mode entry/exit is
  // governed by the hysteretic failure detector in runtime/health.h
  // (heartbeat probes + sync outcomes) instead of per-packet fault-injector
  // ground truth, so grey failures cannot flap the mode.
  HealthOptions health;

  // RMT pipeline the plan's tables are placed on (stage-aware execution);
  // nullopt derives the default Tofino-like profile from `constraints`. If
  // the plan does not place, the spill feedback loop re-partitions until it
  // does — the runtime never deploys a plan the target cannot hold.
  std::optional<rmt::RmtTargetModel> rmt_target;

  // Metrics registry all runtime counters live on (packets, fault/recovery
  // events, per-kind op counts, latency histograms), labeled
  // {mbox=<spec.name>}. Null = the middlebox owns a private registry, so
  // independent instances never share counters.
  telemetry::MetricsRegistry* registry = nullptr;
  // Extra labels appended after {mbox=...} on every instrument this
  // instance registers. The engine scopes each worker shard's counters
  // with {worker=<i>} so shards sharing one registry never collide.
  telemetry::LabelSet extra_labels;
  // Per-packet INT-style tracing: when set, every Process() call commits a
  // PacketTrace recording the pre -> sync-channel -> server -> post hop
  // sequence with op counts and fault events. Null = tracing off; the hot
  // path then takes a single branch per packet.
  telemetry::Tracer* tracer = nullptr;

  // Always-on black-box: transition events (watchdog mode changes, shed
  // episodes, resizes, fault windows) land on this recorder's `flight_lane`.
  // Null falls back to FlightRecorder::Default() — recording is never off,
  // it only changes which ring the events land in. The engine assigns each
  // worker shard its own lane (worker w -> lane w+1).
  telemetry::FlightRecorder* flight = nullptr;
  uint16_t flight_lane = 0;
};

class OffloadedMiddlebox {
 public:
  static Result<std::unique_ptr<OffloadedMiddlebox>> Create(
      const mbox::MiddleboxSpec& spec, OffloadedOptions options = {});

  struct Outcome {
    Status status = Status::Ok();
    Verdict verdict;
    bool fast_path = false;      // never left the switch
    bool state_synced = false;   // a control-plane batch was applied
    bool sync_queued = false;    // mutations deferred into the backlog
    bool degraded = false;       // software-only fallback (switch down)
    bool shed = false;           // refused at ingress (backlog at bound)
    double sync_latency_us = 0;  // control-plane latency (output commit wait)
    ExecStats switch_stats;      // pre + post pass op counts
    ExecStats server_stats;      // non-offloaded pass op counts
    int transfer_bytes_to_server = 0;
    int transfer_bytes_to_switch = 0;
    // Meaningful when verdict is kSend; on every decided verdict it carries
    // the packet back out so batching callers (the engine) can recycle the
    // buffer instead of re-allocating payload storage per dropped packet.
    net::Packet out_packet;
  };

  // Inline dispatch: with tracing off this compiles down to the plain
  // pre-telemetry call, so the fast path pays one branch, not a wrapper
  // frame and an extra packet move.
  Outcome Process(net::Packet pkt, uint64_t now_ms = 0) {
    if (options_.tracer == nullptr) return ProcessInner(std::move(pkt), now_ms);
    return ProcessTraced(std::move(pkt), now_ms);
  }

  const partition::PartitionPlan& plan() const { return plan_; }
  const ir::Function& fn() const { return *fn_; }
  switchsim::Switch& device() { return *switch_; }
  HostStateStore& server_state() { return server_state_; }

  // RMT placement backing the deployed plan, and the state the feedback
  // loop had to spill back to the server to make it place.
  const rmt::PlacementReport& placement() const { return placement_; }
  const std::vector<ir::StateRef>& spilled_state() const { return spilled_; }
  int partition_rounds() const { return partition_rounds_; }

  // Server-side maintenance used by the L4 load balancer: erases flows whose
  // creation time in `created_map` is older than `timeout_ms`, from both
  // `flows_map` and `created_map`, and synchronizes the switch. Returns the
  // number of collected flows.
  //
  // Aging is a batched sweep over the created_map flow table (erase in
  // place, no snapshot). `max_scan_slots` bounds the slots examined per
  // call: 0 sweeps the whole table (legacy stop-the-world semantics);
  // a positive budget resumes from a persistent cursor, amortizing expiry
  // across maintenance ticks at 10M-flow scale.
  Result<int> CollectIdleFlows(ir::StateIndex flows_map,
                               ir::StateIndex created_map, uint64_t now_ms,
                               uint64_t timeout_ms,
                               uint64_t max_scan_slots = 0);

  // If the switch restarted behind our back or its replicated state is
  // suspect (failed sync, degraded interval), rebuild it from the
  // authoritative host store now instead of lazily at the next packet.
  // Idempotent; used by recovery paths and by tests that inspect tables.
  void EnsureSwitchCoherent();

  // Delivers the entire coalesced sync backlog now (one control-plane
  // batch) and, if the delivery failed, rebuilds the switch from the host
  // store. After this returns the switch replica matches the host for every
  // queued key. No-op in legacy inline-sync mode. Quiescence points (end of
  // a run, table inspection) call this; the packet path never does.
  void FlushSyncBacklog();

  // Counters. All live on the metrics registry (one source of truth for
  // --run output, traces, and exporters); the accessors below are thin
  // reads kept for source compatibility with pre-telemetry callers. The
  // two per-packet counters are batched like the op recorders: a plain
  // member is the live value (Process is serialized per instance) and
  // PublishSwitchStageMetrics pushes the delta onto the registry, keeping
  // the packet hot path free of atomics.
  uint64_t packets_total() const { return packets_total_; }
  uint64_t packets_fast_path() const { return packets_fast_; }
  uint64_t cache_miss_aborts() const { return c_.cache_misses->Value(); }
  double FastPathFraction() const {
    const uint64_t total = packets_total();
    return total == 0 ? 0.0
                      : static_cast<double>(packets_fast_path()) / total;
  }

  // Fault / recovery counters (all zero on a perfect substrate).
  uint64_t sync_batches_sent() const { return c_.sync_batches_sent->Value(); }
  uint64_t sync_retries() const { return c_.sync_retries->Value(); }
  uint64_t batches_dropped() const { return c_.batches_dropped->Value(); }
  uint64_t acks_dropped() const { return c_.acks_dropped->Value(); }
  uint64_t sync_failures() const { return c_.sync_failures->Value(); }
  uint64_t switch_restarts() const { return c_.switch_restarts->Value(); }
  uint64_t degraded_packets() const { return c_.degraded_packets->Value(); }
  uint64_t data_retries() const { return c_.data_retries->Value(); }
  uint64_t resyncs() const { return c_.resyncs->Value(); }
  double total_resync_latency_us() const {
    return c_.resync_latency_us->Sum();
  }

  // Overload / watchdog counters (zero in legacy inline-sync mode).
  uint64_t packets_shed() const { return c_.packets_shed->Value(); }
  uint64_t backpressure_events() const {
    return c_.backpressure_events->Value();
  }
  uint64_t backlog_pumps() const { return c_.backlog_pumps->Value(); }
  uint64_t unwatched_fallbacks() const {
    return c_.unwatched_fallbacks->Value();
  }
  // The coalescing backlog itself — depth/peak/coalesced accounting.
  const CoalescingSyncQueue& sync_backlog() const { return sync_queue_; }
  // Null unless OffloadedOptions::health.enabled.
  const HealthWatchdog* watchdog() const { return watchdog_.get(); }

  // The registry this instance's instruments live on (the private one
  // unless OffloadedOptions::registry injected a shared scrape target).
  telemetry::MetricsRegistry& metrics() { return *registry_; }
  // Registry-backed aggregate op counts per execution location — the
  // ExecStats totals, read back from the counters (replaces hand-rolled
  // `ExecStats::operator+=` accumulation loops in drivers).
  telemetry::OpCounts switch_op_totals() const { return switch_ops_.Totals(); }
  telemetry::OpCounts server_op_totals() const { return server_ops_.Totals(); }
  // Publishes the switch's per-stage access/match/miss/recirculation
  // counters (keyed by the RMT placement) onto the registry as gauges.
  void PublishSwitchStageMetrics();

  FaultInjector* injector() { return injector_.get(); }

 private:
  OffloadedMiddlebox(const mbox::MiddleboxSpec& spec,
                     partition::PartitionPlan plan, OffloadedOptions options);

  Status InitializeState(const mbox::MiddleboxSpec& spec);

  const ir::Function* fn_;
  partition::PartitionPlan plan_;
  rmt::PlacementReport placement_;
  std::vector<ir::StateRef> spilled_;
  int partition_rounds_ = 1;
  OffloadedOptions options_;
  Interpreter interp_;
  // Per-instance interpreter buffers: Process is serialized per instance,
  // so one scratch serves every pass and the packet loop never allocates.
  ExecScratch scratch_;
  HostStateStore server_state_;
  std::unique_ptr<switchsim::Switch> switch_;
  std::vector<bool> replicated_maps_;
  std::vector<bool> replicated_globals_;
  std::vector<bool> cached_maps_;  // §7 cache mode, per map index
  // Globals whose authoritative writer is the switch data plane; mirrored
  // into the host store after every completed packet (see
  // ReconcileSwitchGlobals).
  std::vector<ir::StateIndex> switch_only_globals_;
  // Reusable mutation recorder for the server pass (cleared per trip);
  // constructed after the replicated sets are known.
  std::optional<RecordingStateBackend> recording_;
  Rng rng_;

  std::unique_ptr<FaultInjector> injector_;
  // The switch incarnation the server believes it is synchronized with; a
  // mismatch against switch_->epoch() means an (unannounced) restart.
  uint64_t known_epoch_ = 0;
  uint64_t next_sync_seq_ = 0;
  uint64_t next_frame_seq_ = 0;
  // Per-direction delivery high-water marks for data-frame deduplication.
  uint64_t delivered_to_server_ = 0;
  uint64_t delivered_to_switch_ = 0;
  // Set when switch state may be stale (degraded packets were processed or
  // a sync batch could not be delivered); cleared by ResyncSwitch.
  bool needs_resync_ = false;

  // Batched-aging cursor for CollectIdleFlows' budgeted sweeps. Keyed to
  // the created_map it last swept: callers alternate maps rarely enough
  // that a reset on switch is harmless (aging is eventual).
  state::FlowTable::SweepCursor aging_cursor_;
  ir::StateIndex aging_cursor_map_ = 0;

  // Bounded coalescing control-plane backlog (empty/idle in legacy mode).
  CoalescingSyncQueue sync_queue_;
  uint64_t packets_since_pump_ = 0;
  // Hysteretic failure detector; null unless options_.health.enabled.
  std::unique_ptr<HealthWatchdog> watchdog_;

  // Registry the counters below are registered on; owned when the options
  // did not inject a shared one.
  std::unique_ptr<telemetry::MetricsRegistry> owned_registry_;
  telemetry::MetricsRegistry* registry_ = nullptr;
  // {mbox=<name>} plus OffloadedOptions::extra_labels — the label scope
  // every instrument of this instance registers under.
  telemetry::LabelSet scope_;
  struct Counters {
    telemetry::Counter* packets_total;
    telemetry::Counter* packets_fast;
    telemetry::Counter* cache_misses;
    telemetry::Counter* sync_batches_sent;
    telemetry::Counter* sync_retries;
    telemetry::Counter* batches_dropped;
    telemetry::Counter* acks_dropped;
    telemetry::Counter* sync_failures;
    telemetry::Counter* switch_restarts;
    telemetry::Counter* degraded_packets;
    telemetry::Counter* data_retries;
    telemetry::Counter* resyncs;
    telemetry::Counter* packets_shed;
    telemetry::Counter* backpressure_events;
    telemetry::Counter* backlog_pumps;
    telemetry::Counter* probe_misses;
    telemetry::Counter* unwatched_fallbacks;
    telemetry::Histogram* sync_latency_us;
    telemetry::Histogram* resync_latency_us;
  };
  Counters c_{};
  telemetry::OpCountsRecorder switch_ops_;
  telemetry::OpCountsRecorder server_ops_;
  // Live per-packet counts (single writer); pushed_* track what has been
  // forwarded to the registry counters so flushes are delta increments.
  uint64_t packets_total_ = 0;
  uint64_t packets_fast_ = 0;
  mutable uint64_t pushed_packets_total_ = 0;
  mutable uint64_t pushed_packets_fast_ = 0;

  // Flight recorder (never null — defaults to FlightRecorder::Default())
  // plus the edge-detection state the transition events derive from. All
  // single-writer, like the rest of the per-instance packet state.
  telemetry::FlightRecorder* flight_ = nullptr;
  uint16_t flight_lane_ = 0;
  bool in_grey_window_ = false;
  bool in_outage_ = false;
  uint64_t shed_streak_ = 0;      // consecutive packets shed at ingress
  uint64_t degraded_streak_ = 0;  // consecutive packets served degraded

  // Trace context of the packet currently inside Process(); hops and fault
  // events recorded by the pass/link/sync helpers attach here. Null when
  // tracing is off (the runtime is single-threaded per instance).
  telemetry::PacketTrace* active_trace_ = nullptr;

  // Appends a hop / fault event to the active trace; no-ops when off.
  telemetry::TraceHop* AddHop(const char* stage);
  void RecordFault(const char* kind, std::string detail = "");
  // Cold, out-of-line hop recorders. Call sites in the packet path guard
  // with `if (active_trace_ != nullptr) [[unlikely]]`, so with tracing off
  // the hot loop pays one predictable branch per site instead of carrying
  // the recording bodies (OpCounts copies, vector pushes) inline.
  [[gnu::cold]] [[gnu::noinline]] void RecordSwitchHop(const char* stage,
                                                       const ExecStats& stats);
  [[gnu::cold]] [[gnu::noinline]] void RecordWireHop(const char* stage,
                                                     int transfer_bytes);
  [[gnu::cold]] [[gnu::noinline]] void RecordServerHop(const char* stage,
                                                       const ExecStats& stats);
  [[gnu::cold]] [[gnu::noinline]] void RecordSyncHop(double latency_us);

  // The pre-telemetry Process() body; Process() wraps it with trace
  // begin/commit when a tracer is configured.
  // Both take an rvalue reference (not by value) so the inline Process
  // dispatch forwards the packet without an extra header copy.
  Outcome ProcessInner(net::Packet&& pkt, uint64_t now_ms);
  Outcome ProcessTraced(net::Packet&& pkt, uint64_t now_ms);

  // Cache-miss recovery: full server pass + cache refresh + post pass.
  Outcome ProcessCacheMiss(net::Packet pkt, uint64_t now_ms);

  // Switch-down fallback: the whole program interpreted on the server
  // against the authoritative host store (SoftwareMiddlebox semantics).
  Outcome ProcessDegraded(net::Packet pkt, uint64_t now_ms);

  // Crosses one switch<->server link. On a perfect substrate this is the
  // plain serialize/reparse of the seed runtime; under a fault plan the
  // packet travels as a checksummed, sequence-numbered frame with
  // retransmit + receiver-side dedup (exactly-once, in-order delivery over
  // a lossy pipe).
  Result<net::Packet> CrossLink(bool to_server, net::Packet pkt);

  // Reliable control-plane client: sends the mutations as a SyncBatch and
  // retries with bounded exponential backoff until acked. `committed` is
  // false only when every attempt failed (the switch is then marked for
  // resync). Returns the accumulated control-plane latency.
  Result<double> SyncReplicated(
      const std::vector<RecordingStateBackend::MapMutation>& maps,
      const std::vector<RecordingStateBackend::GlobalMutation>& globals,
      bool* committed);

  // Full switch-state rebuild from the host store; returns modeled latency.
  // Drops the queued backlog first — the snapshot subsumes every pending
  // mutation (the host store already holds them).
  double ResyncSwitch();

  // Drains the backlog into one coalesced SyncBatch and delivers it,
  // feeding the delivery outcome to the watchdog as health evidence.
  // Returns the control-plane latency via `latency_out` when non-null. A
  // failed delivery marks the switch for resync, like the inline path.
  Status PumpSyncBacklog(double* latency_out);

  // Heartbeat: one minimal control-plane round-trip, shaped (or eaten) by
  // the injector's active grey window, recorded into the watchdog.
  void ProbeSwitchHealth(bool switch_down);

  // Copies switch-written (kSwitchOnly) globals into the host store after a
  // completed packet, so the host can take over mid-stream (degraded mode)
  // and restore the registers on resync.
  void ReconcileSwitchGlobals();
};

}  // namespace gallium::runtime
