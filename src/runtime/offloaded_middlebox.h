// The offloaded middlebox: the composition Gallium deploys (Fig. 1) —
// a programmable switch running the pre/post partitions and a middlebox
// server running the non-offloaded partition, glued by the synthesized
// transfer header, atomic state synchronization, and output commit
// (§4.3.2–4.3.3).
//
// Per-packet flow:
//   1. The switch executes the pre-processing pass. If the packet's path
//      owes no server work, the packet is emitted — the fast path.
//   2. Otherwise the switch packs live temporaries and branch-condition bits
//      into the Gallium header and forwards the packet to the server (in
//      wire format; the transfer header is parsed back on the other side).
//   3. The server executes the non-offloaded pass. Mutations to replicated
//      state are recorded; if any happened, a control-plane batch applies
//      them to the switch atomically (write-back tables + bit flip) and the
//      packet is buffered until the update completes (output commit).
//   4. The packet returns to the switch, which executes the post-processing
//      pass and emits per the recorded verdict.
#pragma once

#include <memory>

#include "mbox/middleboxes.h"
#include "partition/partitioner.h"
#include "runtime/interpreter.h"
#include "runtime/software_middlebox.h"
#include "runtime/state.h"
#include "switchsim/switch.h"
#include "util/rng.h"

namespace gallium::runtime {

struct OffloadedOptions {
  partition::SwitchConstraints constraints;
  // Cross the switch<->server links in wire format (serialize + reparse).
  // Disable only in throughput loops where the copy cost matters.
  bool serialize_wire = true;
  uint64_t rng_seed = 42;

  // §7 "Reducing memory usage of programmable switches": when > 0, each
  // replicated map's switch table holds at most this many entries (FIFO
  // eviction) — a cache of the server's authoritative map. A lookup miss in
  // a partial table is not authoritative, so the pre pass aborts and the
  // server reprocesses the packet from scratch, then refreshes the cache.
  uint64_t cache_entries_per_table = 0;
};

class OffloadedMiddlebox {
 public:
  static Result<std::unique_ptr<OffloadedMiddlebox>> Create(
      const mbox::MiddleboxSpec& spec, OffloadedOptions options = {});

  struct Outcome {
    Status status = Status::Ok();
    Verdict verdict;
    bool fast_path = false;      // never left the switch
    bool state_synced = false;   // a control-plane batch was applied
    double sync_latency_us = 0;  // control-plane latency (output commit wait)
    ExecStats switch_stats;      // pre + post pass op counts
    ExecStats server_stats;      // non-offloaded pass op counts
    int transfer_bytes_to_server = 0;
    int transfer_bytes_to_switch = 0;
    net::Packet out_packet;      // valid when verdict is kSend
  };

  Outcome Process(net::Packet pkt, uint64_t now_ms = 0);

  const partition::PartitionPlan& plan() const { return plan_; }
  const ir::Function& fn() const { return *fn_; }
  switchsim::Switch& device() { return *switch_; }
  HostStateStore& server_state() { return server_state_; }

  // Server-side maintenance used by the L4 load balancer: erases flows whose
  // creation time in `created_map` is older than `timeout_ms`, from both
  // `flows_map` and `created_map`, and synchronizes the switch. Returns the
  // number of collected flows.
  Result<int> CollectIdleFlows(ir::StateIndex flows_map,
                               ir::StateIndex created_map, uint64_t now_ms,
                               uint64_t timeout_ms);

  // Counters.
  uint64_t packets_total() const { return packets_total_; }
  uint64_t packets_fast_path() const { return packets_fast_; }
  uint64_t cache_miss_aborts() const { return cache_misses_; }
  double FastPathFraction() const {
    return packets_total_ == 0
               ? 0.0
               : static_cast<double>(packets_fast_) / packets_total_;
  }

 private:
  OffloadedMiddlebox(const mbox::MiddleboxSpec& spec,
                     partition::PartitionPlan plan, OffloadedOptions options);

  Status InitializeState(const mbox::MiddleboxSpec& spec);

  const ir::Function* fn_;
  partition::PartitionPlan plan_;
  OffloadedOptions options_;
  Interpreter interp_;
  HostStateStore server_state_;
  std::unique_ptr<switchsim::Switch> switch_;
  std::vector<bool> replicated_maps_;
  std::vector<bool> replicated_globals_;
  std::vector<bool> cached_maps_;  // §7 cache mode, per map index
  Rng rng_;

  uint64_t packets_total_ = 0;
  uint64_t packets_fast_ = 0;
  uint64_t cache_misses_ = 0;

  // Cache-miss recovery: full server pass + cache refresh + post pass.
  Outcome ProcessCacheMiss(net::Packet pkt, uint64_t now_ms);
};

}  // namespace gallium::runtime
