// The offloaded middlebox: the composition Gallium deploys (Fig. 1) —
// a programmable switch running the pre/post partitions and a middlebox
// server running the non-offloaded partition, glued by the synthesized
// transfer header, atomic state synchronization, and output commit
// (§4.3.2–4.3.3).
//
// Per-packet flow:
//   1. The switch executes the pre-processing pass. If the packet's path
//      owes no server work, the packet is emitted — the fast path.
//   2. Otherwise the switch packs live temporaries and branch-condition bits
//      into the Gallium header and forwards the packet to the server (in
//      wire format; the transfer header is parsed back on the other side).
//   3. The server executes the non-offloaded pass. Mutations to replicated
//      state are recorded; if any happened, a control-plane batch applies
//      them to the switch atomically (write-back tables + bit flip) and the
//      packet is buffered until the update completes (output commit).
//   4. The packet returns to the switch, which executes the post-processing
//      pass and emits per the recorded verdict.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "mbox/middleboxes.h"
#include "partition/partitioner.h"
#include "rmt/feedback.h"
#include "runtime/fault.h"
#include "runtime/interpreter.h"
#include "runtime/software_middlebox.h"
#include "runtime/state.h"
#include "runtime/sync.h"
#include "switchsim/switch.h"
#include "util/rng.h"

namespace gallium::runtime {

struct OffloadedOptions {
  partition::SwitchConstraints constraints;
  // Cross the switch<->server links in wire format (serialize + reparse).
  // Disable only in throughput loops where the copy cost matters.
  bool serialize_wire = true;
  uint64_t rng_seed = 42;

  // §7 "Reducing memory usage of programmable switches": when > 0, each
  // replicated map's switch table holds at most this many entries (FIFO
  // eviction) — a cache of the server's authoritative map. A lookup miss in
  // a partial table is not authoritative, so the pre pass aborts and the
  // server reprocesses the packet from scratch, then refreshes the cache.
  uint64_t cache_entries_per_table = 0;

  // Fault injection: when set, the switch<->server data links run framed
  // (seq + checksum, retransmit + dedup) through the plan's FaultyChannels,
  // the control-plane sync path is subject to the plan's loss/delay rates,
  // and the scheduled restarts/outages fire. Null = perfect substrate.
  // The plan must outlive the middlebox.
  const FaultPlan* fault_plan = nullptr;
  // Retry/backoff policy for the reliable sync client and the data link.
  SyncPolicy sync_policy;

  // RMT pipeline the plan's tables are placed on (stage-aware execution);
  // nullopt derives the default Tofino-like profile from `constraints`. If
  // the plan does not place, the spill feedback loop re-partitions until it
  // does — the runtime never deploys a plan the target cannot hold.
  std::optional<rmt::RmtTargetModel> rmt_target;
};

class OffloadedMiddlebox {
 public:
  static Result<std::unique_ptr<OffloadedMiddlebox>> Create(
      const mbox::MiddleboxSpec& spec, OffloadedOptions options = {});

  struct Outcome {
    Status status = Status::Ok();
    Verdict verdict;
    bool fast_path = false;      // never left the switch
    bool state_synced = false;   // a control-plane batch was applied
    bool degraded = false;       // software-only fallback (switch down)
    double sync_latency_us = 0;  // control-plane latency (output commit wait)
    ExecStats switch_stats;      // pre + post pass op counts
    ExecStats server_stats;      // non-offloaded pass op counts
    int transfer_bytes_to_server = 0;
    int transfer_bytes_to_switch = 0;
    net::Packet out_packet;      // valid when verdict is kSend
  };

  Outcome Process(net::Packet pkt, uint64_t now_ms = 0);

  const partition::PartitionPlan& plan() const { return plan_; }
  const ir::Function& fn() const { return *fn_; }
  switchsim::Switch& device() { return *switch_; }
  HostStateStore& server_state() { return server_state_; }

  // RMT placement backing the deployed plan, and the state the feedback
  // loop had to spill back to the server to make it place.
  const rmt::PlacementReport& placement() const { return placement_; }
  const std::vector<ir::StateRef>& spilled_state() const { return spilled_; }
  int partition_rounds() const { return partition_rounds_; }

  // Server-side maintenance used by the L4 load balancer: erases flows whose
  // creation time in `created_map` is older than `timeout_ms`, from both
  // `flows_map` and `created_map`, and synchronizes the switch. Returns the
  // number of collected flows.
  Result<int> CollectIdleFlows(ir::StateIndex flows_map,
                               ir::StateIndex created_map, uint64_t now_ms,
                               uint64_t timeout_ms);

  // If the switch restarted behind our back or its replicated state is
  // suspect (failed sync, degraded interval), rebuild it from the
  // authoritative host store now instead of lazily at the next packet.
  // Idempotent; used by recovery paths and by tests that inspect tables.
  void EnsureSwitchCoherent();

  // Counters.
  uint64_t packets_total() const { return packets_total_; }
  uint64_t packets_fast_path() const { return packets_fast_; }
  uint64_t cache_miss_aborts() const { return cache_misses_; }
  double FastPathFraction() const {
    return packets_total_ == 0
               ? 0.0
               : static_cast<double>(packets_fast_) / packets_total_;
  }

  // Fault / recovery counters (all zero on a perfect substrate).
  uint64_t sync_batches_sent() const { return sync_batches_sent_; }
  uint64_t sync_retries() const { return sync_retries_; }
  uint64_t batches_dropped() const { return batches_dropped_; }
  uint64_t acks_dropped() const { return acks_dropped_; }
  uint64_t sync_failures() const { return sync_failures_; }
  uint64_t switch_restarts() const { return switch_restarts_seen_; }
  uint64_t degraded_packets() const { return degraded_packets_; }
  uint64_t data_retries() const { return data_retries_; }
  uint64_t resyncs() const { return resyncs_; }
  double total_resync_latency_us() const { return total_resync_latency_us_; }

  FaultInjector* injector() { return injector_.get(); }

 private:
  OffloadedMiddlebox(const mbox::MiddleboxSpec& spec,
                     partition::PartitionPlan plan, OffloadedOptions options);

  Status InitializeState(const mbox::MiddleboxSpec& spec);

  const ir::Function* fn_;
  partition::PartitionPlan plan_;
  rmt::PlacementReport placement_;
  std::vector<ir::StateRef> spilled_;
  int partition_rounds_ = 1;
  OffloadedOptions options_;
  Interpreter interp_;
  HostStateStore server_state_;
  std::unique_ptr<switchsim::Switch> switch_;
  std::vector<bool> replicated_maps_;
  std::vector<bool> replicated_globals_;
  std::vector<bool> cached_maps_;  // §7 cache mode, per map index
  // Globals whose authoritative writer is the switch data plane; mirrored
  // into the host store after every completed packet (see
  // ReconcileSwitchGlobals).
  std::vector<ir::StateIndex> switch_only_globals_;
  Rng rng_;

  std::unique_ptr<FaultInjector> injector_;
  // The switch incarnation the server believes it is synchronized with; a
  // mismatch against switch_->epoch() means an (unannounced) restart.
  uint64_t known_epoch_ = 0;
  uint64_t next_sync_seq_ = 0;
  uint64_t next_frame_seq_ = 0;
  // Per-direction delivery high-water marks for data-frame deduplication.
  uint64_t delivered_to_server_ = 0;
  uint64_t delivered_to_switch_ = 0;
  // Set when switch state may be stale (degraded packets were processed or
  // a sync batch could not be delivered); cleared by ResyncSwitch.
  bool needs_resync_ = false;

  uint64_t packets_total_ = 0;
  uint64_t packets_fast_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t sync_batches_sent_ = 0;
  uint64_t sync_retries_ = 0;
  uint64_t batches_dropped_ = 0;
  uint64_t acks_dropped_ = 0;
  uint64_t sync_failures_ = 0;
  uint64_t switch_restarts_seen_ = 0;
  uint64_t degraded_packets_ = 0;
  uint64_t data_retries_ = 0;
  uint64_t resyncs_ = 0;
  double total_resync_latency_us_ = 0;

  // Cache-miss recovery: full server pass + cache refresh + post pass.
  Outcome ProcessCacheMiss(net::Packet pkt, uint64_t now_ms);

  // Switch-down fallback: the whole program interpreted on the server
  // against the authoritative host store (SoftwareMiddlebox semantics).
  Outcome ProcessDegraded(net::Packet pkt, uint64_t now_ms);

  // Crosses one switch<->server link. On a perfect substrate this is the
  // plain serialize/reparse of the seed runtime; under a fault plan the
  // packet travels as a checksummed, sequence-numbered frame with
  // retransmit + receiver-side dedup (exactly-once, in-order delivery over
  // a lossy pipe).
  Result<net::Packet> CrossLink(bool to_server, net::Packet pkt);

  // Reliable control-plane client: sends the mutations as a SyncBatch and
  // retries with bounded exponential backoff until acked. `committed` is
  // false only when every attempt failed (the switch is then marked for
  // resync). Returns the accumulated control-plane latency.
  Result<double> SyncReplicated(
      const std::vector<RecordingStateBackend::MapMutation>& maps,
      const std::vector<RecordingStateBackend::GlobalMutation>& globals,
      bool* committed);

  // Full switch-state rebuild from the host store; returns modeled latency.
  double ResyncSwitch();

  // Copies switch-written (kSwitchOnly) globals into the host store after a
  // completed packet, so the host can take over mid-stream (degraded mode)
  // and restore the registers on resync.
  void ReconcileSwitchGlobals();
};

}  // namespace gallium::runtime
