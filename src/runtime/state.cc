#include "runtime/state.h"

#include <algorithm>
#include <cassert>

namespace gallium::runtime {

HostStateStore::HostStateStore(const ir::Function& fn, uint64_t flow_capacity)
    : fn_(&fn) {
  maps_.resize(fn.maps().size());
  for (size_t m = 0; m < fn.maps().size(); ++m) {
    const ir::MapDecl& decl = fn.map(m);
    if (decl.is_lpm()) continue;  // ordered {prefix, len} store
    state::FlowTable::Config config;
    config.key_words = decl.key_widths.size();
    config.value_words = decl.value_widths.size();
    if (flow_capacity > 0) config.initial_capacity = flow_capacity;
    // Per-map seed: two maps holding the same keys (flows + creation times)
    // should not collide in lockstep.
    config.hash_seed = 0x9e3779b97f4a7c15ull ^ (0x100000001b3ull * (m + 1));
    maps_[m].flat = std::make_unique<state::FlowTable>(config);
  }
  vectors_.resize(fn.vectors().size());
  globals_.resize(fn.globals().size());
  for (size_t g = 0; g < fn.globals().size(); ++g) {
    globals_[g] = fn.globals()[g].init;
  }
}

bool HostStateStore::MapLookup(ir::StateIndex map, const StateKey& key,
                               StateValue* values) {
  MapStore& ms = maps_[map];
  const ir::MapDecl& decl = fn_->map(map);
  if (decl.is_lpm()) {
    // Entries are stored as {prefix, prefix_len}; the lookup key is the
    // single address. Scan from the most to the least specific prefix.
    const uint64_t addr = key.empty() ? 0 : key[0];
    lpm_key_.assign(2, 0);
    for (int len = 32; len >= 0; --len) {
      const uint64_t mask =
          len == 0 ? 0 : (~0ull << (32 - len)) & 0xffffffffull;
      lpm_key_[0] = addr & mask;
      lpm_key_[1] = static_cast<uint64_t>(len);
      const auto it = ms.lpm.find(lpm_key_);
      if (it != ms.lpm.end()) {
        *values = it->second;
        return true;
      }
    }
    values->assign(decl.value_widths.size(), 0);
    return false;
  }
  assert(key.size() == decl.key_widths.size());
  values->resize(decl.value_widths.size());
  if (key.size() != decl.key_widths.size() ||
      !ms.flat->Lookup(key.data(), values->data())) {
    std::fill(values->begin(), values->end(), 0);
    return false;
  }
  return true;
}

void HostStateStore::MapInsert(ir::StateIndex map, const StateKey& key,
                               const StateValue& values) {
  assert(values.size() == fn_->map(map).value_widths.size());
  MapStore& ms = maps_[map];
  if (ms.flat == nullptr) {
    ms.lpm[key] = values;
    return;
  }
  assert(key.size() == fn_->map(map).key_widths.size());
  if (key.size() != fn_->map(map).key_widths.size()) return;
  ms.flat->Upsert(key.data(), values.data());
}

void HostStateStore::MapErase(ir::StateIndex map, const StateKey& key) {
  MapStore& ms = maps_[map];
  if (ms.flat == nullptr) {
    ms.lpm.erase(key);
    return;
  }
  if (key.size() != fn_->map(map).key_widths.size()) return;
  ms.flat->Erase(key.data());
}

std::map<StateKey, StateValue> HostStateStore::map_contents(
    ir::StateIndex map) const {
  const MapStore& ms = maps_[map];
  if (ms.flat == nullptr) return ms.lpm;
  std::map<StateKey, StateValue> sorted;
  const size_t kw = ms.flat->key_words();
  const size_t vw = ms.flat->value_words();
  ms.flat->ForEach([&](const uint64_t* key, const uint64_t* value) {
    sorted.emplace(StateKey(key, key + kw), StateValue(value, value + vw));
  });
  return sorted;
}

void HostStateStore::ForEachMapEntry(
    ir::StateIndex map,
    const std::function<void(const StateKey&, const StateValue&)>& fn) const {
  const MapStore& ms = maps_[map];
  if (ms.flat == nullptr) {
    for (const auto& [key, value] : ms.lpm) fn(key, value);
    return;
  }
  const size_t kw = ms.flat->key_words();
  const size_t vw = ms.flat->value_words();
  StateKey key_scratch(kw);
  StateValue value_scratch(vw);
  ms.flat->ForEach([&](const uint64_t* key, const uint64_t* value) {
    key_scratch.assign(key, key + kw);
    value_scratch.assign(value, value + vw);
    fn(key_scratch, value_scratch);
  });
}

uint64_t HostStateStore::VectorGet(ir::StateIndex vec, uint64_t index) {
  const auto& v = vectors_[vec];
  // A vector compiles to an index-keyed exact-match table on the switch, so
  // an out-of-range read is a table miss and yields zero — the host
  // semantics must match (middleboxes bound their indices with a modulo
  // anyway).
  if (index >= v.size()) return 0;
  return v[index];
}

uint64_t HostStateStore::VectorSize(ir::StateIndex vec) {
  return vectors_[vec].size();
}

uint64_t HostStateStore::GlobalRead(ir::StateIndex global) {
  if (global < delegated_.size() && delegated_[global] != nullptr) {
    return delegated_[global]->Read(global);
  }
  return globals_[global];
}

void HostStateStore::GlobalWrite(ir::StateIndex global, uint64_t value) {
  if (global < delegated_.size() && delegated_[global] != nullptr) {
    delegated_[global]->Write(global, value);
    return;
  }
  globals_[global] = value;
}

void HostStateStore::DelegateGlobal(ir::StateIndex g, GlobalOverlay* overlay) {
  if (delegated_.size() < globals_.size()) delegated_.resize(globals_.size());
  overlay->Write(g, globals_[g]);
  delegated_[g] = overlay;
}

}  // namespace gallium::runtime
