#include "runtime/state.h"

#include <cassert>

namespace gallium::runtime {

HostStateStore::HostStateStore(const ir::Function& fn) : fn_(&fn) {
  maps_.resize(fn.maps().size());
  vectors_.resize(fn.vectors().size());
  globals_.resize(fn.globals().size());
  for (size_t g = 0; g < fn.globals().size(); ++g) {
    globals_[g] = fn.globals()[g].init;
  }
}

bool HostStateStore::MapLookup(ir::StateIndex map, const StateKey& key,
                               StateValue* values) {
  const auto& contents = maps_[map];
  const ir::MapDecl& decl = fn_->map(map);
  if (decl.is_lpm()) {
    // Entries are stored as {prefix, prefix_len}; the lookup key is the
    // single address. Scan from the most to the least specific prefix.
    const uint64_t addr = key.empty() ? 0 : key[0];
    lpm_key_.assign(2, 0);
    for (int len = 32; len >= 0; --len) {
      const uint64_t mask =
          len == 0 ? 0 : (~0ull << (32 - len)) & 0xffffffffull;
      lpm_key_[0] = addr & mask;
      lpm_key_[1] = static_cast<uint64_t>(len);
      const auto it = contents.find(lpm_key_);
      if (it != contents.end()) {
        *values = it->second;
        return true;
      }
    }
    values->assign(decl.value_widths.size(), 0);
    return false;
  }
  const auto it = contents.find(key);
  if (it == contents.end()) {
    values->assign(decl.value_widths.size(), 0);
    return false;
  }
  *values = it->second;
  return true;
}

void HostStateStore::MapInsert(ir::StateIndex map, const StateKey& key,
                               const StateValue& values) {
  assert(values.size() == fn_->map(map).value_widths.size());
  maps_[map][key] = values;
}

void HostStateStore::MapErase(ir::StateIndex map, const StateKey& key) {
  maps_[map].erase(key);
}

uint64_t HostStateStore::VectorGet(ir::StateIndex vec, uint64_t index) {
  const auto& v = vectors_[vec];
  // A vector compiles to an index-keyed exact-match table on the switch, so
  // an out-of-range read is a table miss and yields zero — the host
  // semantics must match (middleboxes bound their indices with a modulo
  // anyway).
  if (index >= v.size()) return 0;
  return v[index];
}

uint64_t HostStateStore::VectorSize(ir::StateIndex vec) {
  return vectors_[vec].size();
}

uint64_t HostStateStore::GlobalRead(ir::StateIndex global) {
  if (global < delegated_.size() && delegated_[global] != nullptr) {
    return delegated_[global]->Read(global);
  }
  return globals_[global];
}

void HostStateStore::GlobalWrite(ir::StateIndex global, uint64_t value) {
  if (global < delegated_.size() && delegated_[global] != nullptr) {
    delegated_[global]->Write(global, value);
    return;
  }
  globals_[global] = value;
}

void HostStateStore::DelegateGlobal(ir::StateIndex g, GlobalOverlay* overlay) {
  if (delegated_.size() < globals_.size()) delegated_.resize(globals_.size());
  overlay->Write(g, globals_[g]);
  delegated_[g] = overlay;
}

}  // namespace gallium::runtime
