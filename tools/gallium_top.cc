// gallium-top — a live text dashboard over a galliumc metrics file.
//
// Points at the Prometheus text (or JSON-suffixed, but .prom is the native
// format here) file a running `galliumc --run N --workers W --metrics-out
// FILE --metrics-every K` rewrites at every quiescence point, and renders
// one row per worker shard: packets, throughput (delta-based Mpps between
// refreshes), sync-backlog depth, watchdog health state, and flow-table
// occupancy. The footer shows the engine-wide gauges (pinned flows, global
// handoffs) and the flight recorder's event counts.
//
// The join works because every engine and shard series carries the same
// {mbox, worker} label pair — the label convention the exporter and the
// engine agreed on. No network, no scrape: the file IS the interface, so
// the tool also works on a dump taken from a dead run.
//
// Usage:
//   gallium_top FILE [--interval-ms N] [--iterations N] [--once]
//               [--no-clear]
//
//   --once          render a single frame and exit (CI smoke mode)
//   --iterations N  render N frames, then exit
//   --interval-ms N refresh period (default 1000)
//   --no-clear      append frames instead of redrawing in place
//
// Exit codes: 0 rendered at least one frame; 1 the file never appeared or
// never parsed; 2 usage error.
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Series {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

// One parsed metrics file.
struct Snapshot {
  std::vector<Series> series;

  const Series* Find(const std::string& name,
                     const std::map<std::string, std::string>& labels) const {
    for (const auto& s : series) {
      if (s.name != name) continue;
      bool match = true;
      for (const auto& [k, v] : labels) {
        auto it = s.labels.find(k);
        if (it == s.labels.end() || it->second != v) {
          match = false;
          break;
        }
      }
      if (match) return &s;
    }
    return nullptr;
  }

  double Value(const std::string& name,
               const std::map<std::string, std::string>& labels,
               double fallback = 0) const {
    const Series* s = Find(name, labels);
    return s == nullptr ? fallback : s->value;
  }
};

// Prometheus text exposition parser, inverse of the exporter's escaping
// rules: inside a label value only `\\`, `\"`, and `\n` are escapes.
bool ParseLine(const std::string& line, Series* out) {
  size_t i = 0;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
    ++i;
  if (i >= line.size() || line[i] == '#') return false;
  const size_t name_start = i;
  while (i < line.size() && line[i] != '{' && !std::isspace(
                                static_cast<unsigned char>(line[i])))
    ++i;
  out->name = line.substr(name_start, i - name_start);
  out->labels.clear();
  if (out->name.empty()) return false;
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      const size_t key_start = i;
      while (i < line.size() && line[i] != '=') ++i;
      if (i >= line.size()) return false;
      const std::string key = line.substr(key_start, i - key_start);
      ++i;  // '='
      if (i >= line.size() || line[i] != '"') return false;
      ++i;  // opening quote
      std::string value;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) {
          const char esc = line[i + 1];
          if (esc == 'n') {
            value.push_back('\n');
          } else {
            value.push_back(esc);  // \\ and \" unescape to the raw char
          }
          i += 2;
        } else {
          value.push_back(line[i++]);
        }
      }
      if (i >= line.size()) return false;
      ++i;  // closing quote
      out->labels[key] = value;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') return false;
    ++i;
  }
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
    ++i;
  if (i >= line.size()) return false;
  char* end = nullptr;
  out->value = std::strtod(line.c_str() + i, &end);
  return end != line.c_str() + i;
}

bool LoadSnapshot(const std::string& path, Snapshot* snap) {
  std::ifstream in(path);
  if (!in) return false;
  snap->series.clear();
  std::string line;
  Series s;
  while (std::getline(in, line)) {
    if (ParseLine(line, &s)) snap->series.push_back(s);
  }
  return !snap->series.empty();
}

const char* ModeName(double mode) {
  if (mode == 0) return "offloaded";
  if (mode == 1) return "DEGRADED";
  if (mode == 2) return "resync";
  return "?";
}

// One dashboard row: a worker shard (or a bare single-core runtime, which
// renders as worker "-").
struct RowKey {
  std::string mbox;
  std::string worker;
  bool operator<(const RowKey& o) const {
    if (mbox != o.mbox) return mbox < o.mbox;
    if (worker.size() != o.worker.size())
      return worker.size() < o.worker.size();
    return worker < o.worker;
  }
};

void RenderFrame(const Snapshot& snap, const Snapshot& prev, bool have_prev,
                 double interval_s) {
  // Rows come from the engine's worker gauges when an engine ran, else
  // from the runtime's packet counters (bare --run).
  std::set<RowKey> rows;
  bool engine = false;
  for (const auto& s : snap.series) {
    if (s.name == "gallium_engine_worker_packets") {
      rows.insert({s.labels.count("mbox") ? s.labels.at("mbox") : "?",
                   s.labels.count("worker") ? s.labels.at("worker") : "-"});
      engine = true;
    }
  }
  if (rows.empty()) {
    for (const auto& s : snap.series) {
      if (s.name == "gallium_packets_total") {
        rows.insert({s.labels.count("mbox") ? s.labels.at("mbox") : "?",
                     s.labels.count("worker") ? s.labels.at("worker") : "-"});
      }
    }
  }

  std::printf("%-8s %-6s %12s %8s %9s %-10s %7s %9s\n", "MBOX", "WORK",
              "PACKETS", "MPPS", "BACKLOG", "HEALTH", "FLOW%", "RINGPEAK");
  for (const auto& row : rows) {
    std::map<std::string, std::string> scope{{"mbox", row.mbox}};
    if (row.worker != "-") scope["worker"] = row.worker;
    const char* pkts_series =
        engine ? "gallium_engine_worker_packets" : "gallium_packets_total";
    const char* busy_series = "gallium_engine_worker_busy_us";
    const double packets = snap.Value(pkts_series, scope);

    // Delta-based throughput: packets this refresh over busy time this
    // refresh (dedicated-cores model). Falls back to the cumulative rate on
    // the first frame.
    std::string mpps = "-";
    const Series* busy = snap.Find(busy_series, scope);
    if (busy != nullptr) {
      double dp = packets, db = busy->value;
      if (have_prev) {
        dp -= prev.Value(pkts_series, scope);
        db -= prev.Value(busy_series, scope);
      }
      if (db > 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", dp / db);
        mpps = buf;
      }
    }

    const Series* backlog = snap.Find("gallium_sync_backlog_depth", scope);
    const Series* mode = snap.Find("gallium_watchdog_mode", scope);

    // Flow-table occupancy: worst map owned by this shard.
    double occupancy = -1;
    for (const auto& s : snap.series) {
      if (s.name != "gallium_flow_table_occupancy") continue;
      bool match = true;
      for (const auto& [k, v] : scope) {
        auto it = s.labels.find(k);
        if (it == s.labels.end() || it->second != v) {
          match = false;
          break;
        }
      }
      if (match) occupancy = std::max(occupancy, s.value);
    }
    std::string flow = "-";
    if (occupancy >= 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", 100.0 * occupancy);
      flow = buf;
    }

    const Series* ring = snap.Find("gallium_engine_ring_high_water", scope);
    char backlog_buf[32] = "-";
    if (backlog != nullptr) {
      std::snprintf(backlog_buf, sizeof(backlog_buf), "%.0f",
                    backlog->value);
    }
    char ring_buf[32] = "-";
    if (ring != nullptr) {
      std::snprintf(ring_buf, sizeof(ring_buf), "%.0f", ring->value);
    }
    std::printf("%-8s %-6s %12.0f %8s %9s %-10s %7s %9s\n", row.mbox.c_str(),
                row.worker.c_str(), packets, mpps.c_str(), backlog_buf,
                mode != nullptr ? ModeName(mode->value) : "-", flow.c_str(),
                ring_buf);
  }

  const Series* pinned = nullptr;
  const Series* handoffs = nullptr;
  const Series* recorded = nullptr;
  const Series* dropped = nullptr;
  for (const auto& s : snap.series) {
    if (s.name == "gallium_engine_pinned_flows") pinned = &s;
    if (s.name == "gallium_engine_global_handoffs") handoffs = &s;
    if (s.name == "gallium_flight_events_recorded") recorded = &s;
    if (s.name == "gallium_flight_events_dropped") dropped = &s;
  }
  std::printf("\npinned-flows=%.0f  global-handoffs=%.0f  "
              "flight-events=%.0f (dropped %.0f)  refresh=%.1fs\n",
              pinned != nullptr ? pinned->value : 0,
              handoffs != nullptr ? handoffs->value : 0,
              recorded != nullptr ? recorded->value : 0,
              dropped != nullptr ? dropped->value : 0, interval_s);
}

int Usage() {
  std::fprintf(stderr,
               "usage: gallium_top FILE [--interval-ms N] [--iterations N] "
               "[--once] [--no-clear]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string path = argv[1];
  int interval_ms = 1000;
  int iterations = -1;  // -1 = until the file stops changing twice in a row
  bool clear = true;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      iterations = 1;
    } else if (arg == "--no-clear") {
      clear = false;
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
      if (interval_ms < 1) return Usage();
    } else if (arg == "--iterations" && i + 1 < argc) {
      iterations = std::atoi(argv[++i]);
      if (iterations < 1) return Usage();
    } else {
      return Usage();
    }
  }

  Snapshot snap, prev;
  bool have_prev = false;
  int rendered = 0;
  int stale_frames = 0;
  for (int frame = 0; iterations < 0 || frame < iterations; ++frame) {
    if (!LoadSnapshot(path, &snap)) {
      if (rendered == 0 && frame < 10 && iterations != 1) {
        // The producing run may not have written its first scrape yet.
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
        continue;
      }
      if (rendered == 0) {
        std::fprintf(stderr, "gallium-top: cannot parse %s\n", path.c_str());
        return 1;
      }
      break;
    }
    if (clear && iterations != 1) std::printf("\x1b[2J\x1b[H");
    std::printf("gallium-top — %s\n\n", path.c_str());
    RenderFrame(snap, prev, have_prev, interval_ms / 1000.0);
    std::fflush(stdout);
    ++rendered;

    if (iterations < 0) {
      // Unattended mode: exit once the producer has clearly stopped
      // (two refreshes with no change), so CI and scripts never hang.
      bool changed = !have_prev || snap.series.size() != prev.series.size();
      if (!changed) {
        for (size_t i = 0; i < snap.series.size(); ++i) {
          if (snap.series[i].value != prev.series[i].value ||
              snap.series[i].name != prev.series[i].name) {
            changed = true;
            break;
          }
        }
      }
      stale_frames = changed ? 0 : stale_frames + 1;
      if (stale_frames >= 2) break;
    }
    prev = snap;
    have_prev = true;
    if (iterations < 0 || frame + 1 < iterations) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  return rendered > 0 ? 0 : 1;
}
