// galliumc — the Gallium compiler driver.
//
// Compiles one of the built-in middleboxes and writes the deployable
// artifacts:
//   <out>/<name>.p4       — the switch program (pre + post partitions)
//   <out>/<name>_server.cc — the DPDK server program (non-offloaded part)
//   <out>/<name>_input.cc  — the rendered input source (what Table 1 counts)
//   <out>/<name>_plan.txt  — partition plan, transfers, state placement
//
// Usage:
//   galliumc <middlebox> [--out DIR] [--pipeline-depth K]
//            [--metadata-bytes N] [--transfer-bytes N] [--memory-mb N]
//            [--objective count|weighted] [--optimize] [--print]
//            [--resources] [--run N] [--chaos-seed S]
//            [--fault-plan KIND:SEED] [--sync-queue DEPTH]
//            [--pump-interval N] [--shed] [--watchdog]
//            [--verify] [--campaign] [--mutate CLASS]
//            [--metrics-out FILE] [--trace-out FILE]
//            [--metrics-every N] [--flight-dump FILE]
//
//   <middlebox> ∈ {minilb, nat, lb, firewall, proxy, trojan, router}
//
// --resources prints the RMT placement report: the per-stage occupancy of
// every table the plan puts on the switch, the peak stage utilization, and
// the cost model's stage-aware latency/throughput prediction.
//
// --run N drives N synthetic packets through the offloaded runtime after
// compiling and reports the fast-path fraction and the fault/recovery
// counters; --chaos-seed S additionally runs them over a seeded faulty
// substrate (lossy links, lossy control plane, switch restarts/outages).
// --fault-plan KIND:SEED replays a named fault-plan generator instead
// (KIND ∈ {random, overload, grey}) — the reproduction handle the chaos
// tests print on failure. --sync-queue DEPTH enables the bounded coalescing
// sync backlog (with --pump-interval N packets between drains and --shed
// selecting ingress shedding over backpressure at the bound), and
// --watchdog enables the health watchdog; both print their counters after
// the run.
//
// --metrics-out FILE scrapes the telemetry registry after the compile (and
// the --run traffic, when requested) into FILE: JSON when the path ends in
// .json, Prometheus text exposition otherwise. Includes per-phase compile
// timings, the runtime's packet/sync/fault counters, per-op-kind execution
// counts, and the per-RMT-stage switch counters.
//
// --trace-out FILE writes the per-packet traces of the --run traffic as
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing), every
// hop priced by the calibrated cost model.
//
// --flight-dump FILE serializes the always-on flight recorder (watchdog
// transitions, sync backpressure/shed episodes, flow-table resizes, ring
// high-water marks) after the run — FILE as versioned JSON plus
// FILE.trace.json as a Perfetto timeline. SIGUSR2 triggers the same dump
// mid-run at the next packet boundary. --metrics-every N (engine path)
// quiesces and rewrites --metrics-out every N packets so a live gallium-top
// can watch the counters move.
//
// --verify gates the compile on translation validation (symbolic path
// equivalence of the composed pre/server/post pipeline against the source
// IR) plus the offload-safety lint suite. --campaign additionally runs the
// Gauntlet-style mutation campaign (all seeded bug classes) against the
// plan; --mutate CLASS restricts it to one class (label-mis-removal,
// dropped-write-back, reordered-sync, wrong-table-action,
// swapped-boundary).
//
// Exit-code contract (stable; CI and tooling rely on it):
//   0  success
//   1  generic failure (I/O, runtime errors, IR verification)
//   2  usage error
//   3  partition/placement infeasibility (JSON diagnostic on stderr)
//   4  verification failure: translation validation rejected the plan, an
//      error-severity lint fired, or a mutation campaign missed a mutant
//      (JSON diagnostic with per-finding details on stderr)
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "cppgen/support.h"
#include "engine/engine.h"
#include "ir/printer.h"
#include "mbox/middleboxes.h"
#include "net/headers.h"
#include "perf/harness.h"
#include "runtime/fault.h"
#include "runtime/health.h"
#include "runtime/offloaded_middlebox.h"
#include "runtime/sync_queue.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "verify/mutation.h"
#include "workload/packet_gen.h"

namespace {

using namespace gallium;

// SIGUSR2 asks the running tool for a flight-recorder dump at the next
// packet boundary — the live-postmortem path an operator uses against a
// wedged run. The handler only flips the flag; all I/O happens on the
// traffic loop's thread.
volatile std::sig_atomic_t g_flight_dump_requested = 0;

void OnFlightDumpSignal(int) { g_flight_dump_requested = 1; }

bool DumpFlightRecorder(const std::string& path) {
  if (!telemetry::FlightRecorder::Default().DumpToFile(path)) {
    std::fprintf(stderr, "galliumc: cannot write flight dump %s\n",
                 path.c_str());
    return false;
  }
  std::printf("  wrote flight dump to %s (+ %s.trace.json)\n", path.c_str(),
              path.c_str());
  return true;
}

// Services a pending SIGUSR2 request, if any.
void MaybeDumpFlightRecorder(const std::string& path) {
  if (g_flight_dump_requested == 0) return;
  g_flight_dump_requested = 0;
  (void)DumpFlightRecorder(path.empty() ? "gallium_flight_dump.json" : path);
}

bool WriteMetricsFile(telemetry::MetricsRegistry* registry,
                      const std::string& path);

Result<mbox::MiddleboxSpec> BuildByName(const std::string& name) {
  if (name == "minilb") return mbox::BuildMiniLb();
  if (name == "nat") return mbox::BuildMazuNat();
  if (name == "lb") return mbox::BuildLoadBalancer();
  if (name == "firewall") return mbox::BuildFirewall();
  if (name == "proxy") return mbox::BuildProxy();
  if (name == "trojan") return mbox::BuildTrojanDetector();
  if (name == "router") {
    // A representative routing table exercising the lpm match kind.
    std::vector<mbox::RouteEntry> routes;
    routes.push_back({0, 0, 9, 0x9});  // default route
    for (uint32_t i = 0; i < 8; ++i) {
      routes.push_back({net::MakeIpv4(10, static_cast<uint8_t>(i), 0, 0), 16,
                        i, 0x100ull + i});
    }
    return mbox::BuildIpRouter(routes);
  }
  return InvalidArgument(
      "unknown middlebox '" + name +
      "' (try: minilb nat lb firewall proxy trojan router)");
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "galliumc: cannot write %s\n", path.c_str());
    return false;
  }
  out << contents;
  return true;
}

bool WriteMetricsFile(telemetry::MetricsRegistry* registry,
                      const std::string& path) {
  const bool json =
      path.size() >= 5 && path.rfind(".json") == path.size() - 5;
  return WriteFile(path,
                   json ? registry->ToJson() : registry->ToPrometheusText());
}

void PrintUsage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: galliumc <minilb|nat|lb|firewall|proxy|trojan|router>\n"
      "                [--out DIR] [--pipeline-depth K] [--metadata-bytes N]\n"
      "                [--transfer-bytes N] [--memory-mb N]\n"
      "                [--objective count|weighted] [--optimize] [--print]\n"
      "                [--resources] [--run N] [--chaos-seed S]\n"
      "                [--workers N] [--burst N] [--flow-capacity N]\n"
      "                [--fault-plan KIND:SEED] [--sync-queue DEPTH]\n"
      "                [--pump-interval N] [--shed] [--watchdog]\n"
      "                [--verify] [--campaign] [--mutate CLASS]\n"
      "                [--metrics-out FILE] [--trace-out FILE]\n"
      "                [--metrics-every N] [--flight-dump FILE]\n"
      "\n"
      "engine:\n"
      "  --workers N    drive --run traffic through the multi-worker packet\n"
      "                 engine with N per-core shards (RSS-style 5-tuple\n"
      "                 steering, shared globals on the sync core)\n"
      "  --burst N      burst size for the run-to-completion loop\n"
      "                 (default 32; implies the engine path)\n"
      "  --flow-capacity N  pre-size every exact-match host map's flat flow\n"
      "                 table for N entries (default: grow incrementally);\n"
      "                 set to the expected concurrent-flow population for\n"
      "                 resize-free steady state\n"
      "\n"
      "robustness:\n"
      "  --fault-plan KIND:SEED  replay a named fault generator (random,\n"
      "                          overload, grey) — the spec chaos failures\n"
      "                          print for reproduction\n"
      "  --sync-queue DEPTH      bounded coalescing sync backlog of DEPTH\n"
      "                          batches (0 = legacy inline sync)\n"
      "  --pump-interval N       drain the backlog every N packets\n"
      "  --shed                  shed at ingress when the backlog is full\n"
      "                          (default: backpressure)\n"
      "  --watchdog              enable the health watchdog (hysteretic\n"
      "                          offloaded/degraded failure detector)\n"
      "\n"
      "telemetry:\n"
      "  --metrics-out FILE  dump the metrics registry (compile timings,\n"
      "                      runtime counters, per-stage switch counters):\n"
      "                      JSON if FILE ends in .json, Prometheus text\n"
      "                      otherwise\n"
      "  --trace-out FILE    write per-packet traces of the --run traffic\n"
      "                      as Chrome trace-event JSON (Perfetto-loadable)\n"
      "  --metrics-every N   (engine path) quiesce and rewrite --metrics-out\n"
      "                      every N packets, so gallium-top can watch the\n"
      "                      run live\n"
      "  --flight-dump FILE  serialize the always-on flight recorder after\n"
      "                      the run: FILE holds the versioned JSON dump and\n"
      "                      FILE.trace.json the Perfetto timeline; SIGUSR2\n"
      "                      forces a dump mid-run at the next packet\n"
      "                      boundary\n"
      "\n"
      "verification:\n"
      "  --verify         gate the compile on translation validation +\n"
      "                   offload-safety lints\n"
      "  --campaign       run the mutation campaign (all seeded bug classes)\n"
      "  --mutate CLASS   run one class: label-mis-removal,\n"
      "                   dropped-write-back, reordered-sync,\n"
      "                   wrong-table-action, swapped-boundary\n"
      "\n"
      "exit codes:\n"
      "  0  success\n"
      "  1  generic failure\n"
      "  2  usage error\n"
      "  3  partition/placement infeasibility (JSON diagnostic on stderr)\n"
      "  4  verification failure (JSON diagnostic on stderr)\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

// Drives `num_packets` synthetic packets through the offloaded runtime and
// prints the counters, including the fault/retry/degraded-mode ones. The
// runtime publishes its counters into `registry` and, when `tracer` is
// non-null, commits one INT-style trace per packet into it.
int RunTraffic(const mbox::MiddleboxSpec& spec, int num_packets,
               uint64_t chaos_seed, bool chaos,
               const std::string& fault_spec,
               const runtime::SyncQueueOptions& sync_queue, bool watchdog,
               int workers, int burst, uint64_t flow_capacity,
               int metrics_every, const std::string& metrics_out,
               const std::string& flight_dump,
               telemetry::MetricsRegistry* registry,
               telemetry::Tracer* tracer) {
  runtime::FaultPlan plan;
  runtime::OffloadedOptions options;
  options.registry = registry;
  options.tracer = tracer;
  options.sync_queue = sync_queue;
  options.health.enabled = watchdog;
  options.flow_capacity = flow_capacity;
  if (!fault_spec.empty()) {
    auto parsed = runtime::FaultPlanFromSpec(
        fault_spec, static_cast<uint64_t>(num_packets));
    if (!parsed.ok()) {
      std::fprintf(stderr, "galliumc: bad --fault-plan: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    plan = *parsed;
    options.fault_plan = &plan;
    std::printf("  chaos: %s\n", plan.ToString().c_str());
  } else if (chaos) {
    plan = runtime::MakeRandomFaultPlan(chaos_seed,
                                        static_cast<uint64_t>(num_packets));
    options.fault_plan = &plan;
    std::printf("  chaos: %s\n", plan.ToString().c_str());
  }
  Rng rng(chaos_seed ^ 0x5ca1ab1eull);
  workload::TraceOptions trace_options;
  trace_options.num_flows = std::max(8, num_packets / 8);
  trace_options.ingress_port = mbox::kPortInternal;
  const workload::Trace trace = workload::MakeTrace(rng, trace_options);
  if (trace.packets.empty()) {
    std::fprintf(stderr, "galliumc: empty trace\n");
    return 1;
  }

  // --workers / --burst: route the traffic through the multi-worker engine
  // (per-core shards, RSS steering, burst loop) instead of one bare
  // middlebox. The engine publishes {worker=<i>}-labeled counters into the
  // same registry --metrics-out dumps.
  if (workers > 1 || burst > 0) {
    engine::EngineOptions engine_options;
    engine_options.workers = std::max(1, workers);
    engine_options.burst = burst > 0 ? burst : 32;
    engine_options.runtime = options;
    auto eng = engine::Engine::Create(spec, engine_options);
    if (!eng.ok()) {
      std::fprintf(stderr, "galliumc: engine creation failed: %s\n",
                   eng.status().ToString().c_str());
      return 1;
    }
    std::vector<net::Packet> traffic;
    traffic.reserve(static_cast<size_t>(num_packets));
    for (int i = 0; i < num_packets; ++i) {
      traffic.push_back(trace.packets[i % trace.packets.size()]);
    }

    // --metrics-every N: run in N-packet chunks, quiescing and rewriting
    // --metrics-out after each, so a live gallium-top (or anything tailing
    // the file) sees the counters advance while traffic is still flowing.
    const size_t chunk = metrics_every > 0
                             ? static_cast<size_t>(metrics_every)
                             : traffic.size();
    engine::RunReport report;
    report.worker_packets.assign(static_cast<size_t>((*eng)->workers()), 0);
    report.worker_busy_us.assign(static_cast<size_t>((*eng)->workers()), 0.0);
    std::vector<net::Packet> slice;
    for (size_t base = 0; base < traffic.size(); base += chunk) {
      const size_t n = std::min(chunk, traffic.size() - base);
      slice.assign(traffic.begin() + static_cast<long>(base),
                   traffic.begin() + static_cast<long>(base + n));
      const engine::RunReport part =
          (*eng)->Run(slice, /*start_now_ms=*/1 + base);
      report.packets += part.packets;
      report.sends += part.sends;
      report.drops += part.drops;
      report.errors += part.errors;
      report.shed += part.shed;
      report.fast_path += part.fast_path;
      for (int w = 0; w < (*eng)->workers(); ++w) {
        report.worker_packets[w] += part.worker_packets[w];
        report.worker_busy_us[w] += part.worker_busy_us[w];
      }
      (*eng)->Quiesce();
      if (metrics_every > 0 && !metrics_out.empty()) {
        (void)WriteMetricsFile(registry, metrics_out);
      }
      MaybeDumpFlightRecorder(flight_dump);
    }

    const double fast = report.packets == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(report.fast_path) /
                                  static_cast<double>(report.packets);
    std::printf(
        "  engine: %d workers  burst %d  %llu packets  fast-path %.1f%%  "
        "sends %llu  drops %llu  shed %llu  errors %llu\n",
        (*eng)->workers(), engine_options.burst,
        static_cast<unsigned long long>(report.packets), fast,
        static_cast<unsigned long long>(report.sends),
        static_cast<unsigned long long>(report.drops),
        static_cast<unsigned long long>(report.shed),
        static_cast<unsigned long long>(report.errors));
    std::printf("  aggregate: %.2f Mpps (dedicated-cores model)  "
                "pinned-flows=%zu\n",
                report.AggregateMpps(), (*eng)->steering().pinned_flows());
    for (int w = 0; w < (*eng)->workers(); ++w) {
      std::printf("  worker %d: packets=%llu busy=%.0fus\n", w,
                  static_cast<unsigned long long>(report.worker_packets[w]),
                  report.worker_busy_us[w]);
    }
    return report.errors == 0 ? 0 : 1;
  }

  auto mbx = runtime::OffloadedMiddlebox::Create(spec, options);
  if (!mbx.ok()) {
    std::fprintf(stderr, "galliumc: runtime creation failed: %s\n",
                 mbx.status().ToString().c_str());
    return 1;
  }

  uint64_t now_ms = 0;
  int processed = 0, degraded = 0, synced = 0, errors = 0;
  double sync_latency_total = 0;
  while (processed < num_packets) {
    MaybeDumpFlightRecorder(flight_dump);
    const net::Packet& pkt =
        trace.packets[processed % trace.packets.size()];
    now_ms += 1;
    auto out = (*mbx)->Process(pkt, now_ms);
    ++processed;
    if (!out.status.ok()) {
      ++errors;
      continue;
    }
    if (out.degraded) ++degraded;
    if (out.state_synced) {
      ++synced;
      sync_latency_total += out.sync_latency_us;
    }
  }
  // Deliver whatever the backlog still holds before scraping counters, so
  // the printed state reflects a quiesced runtime.
  (*mbx)->FlushSyncBacklog();
  (*mbx)->PublishSwitchStageMetrics();

  std::printf("  run: %d packets  fast-path %.1f%%  degraded %d  errors %d\n",
              processed, 100.0 * (*mbx)->FastPathFraction(), degraded, errors);
  std::printf(
      "  sync: batches=%llu retries=%llu batch-drops=%llu ack-drops=%llu "
      "failures=%llu mean-commit=%.1fus\n",
      static_cast<unsigned long long>((*mbx)->sync_batches_sent()),
      static_cast<unsigned long long>((*mbx)->sync_retries()),
      static_cast<unsigned long long>((*mbx)->batches_dropped()),
      static_cast<unsigned long long>((*mbx)->acks_dropped()),
      static_cast<unsigned long long>((*mbx)->sync_failures()),
      synced == 0 ? 0.0 : sync_latency_total / synced);
  std::printf(
      "  recovery: data-retries=%llu switch-restarts=%llu resyncs=%llu "
      "degraded-packets=%llu cache-misses=%llu\n",
      static_cast<unsigned long long>((*mbx)->data_retries()),
      static_cast<unsigned long long>((*mbx)->switch_restarts()),
      static_cast<unsigned long long>((*mbx)->resyncs()),
      static_cast<unsigned long long>((*mbx)->degraded_packets()),
      static_cast<unsigned long long>((*mbx)->cache_miss_aborts()));
  if (sync_queue.enabled()) {
    const auto& backlog = (*mbx)->sync_backlog();
    std::printf(
        "  backlog: peak-depth=%llu enqueued=%llu coalesced=%llu pumps=%llu "
        "shed=%llu backpressure=%llu\n",
        static_cast<unsigned long long>(backlog.peak_depth()),
        static_cast<unsigned long long>(backlog.enqueued_mutations()),
        static_cast<unsigned long long>(backlog.coalesced_mutations()),
        static_cast<unsigned long long>((*mbx)->backlog_pumps()),
        static_cast<unsigned long long>((*mbx)->packets_shed()),
        static_cast<unsigned long long>((*mbx)->backpressure_events()));
  }
  if (const auto* dog = (*mbx)->watchdog(); dog != nullptr) {
    std::printf(
        "  watchdog: mode=%s transitions=%llu probes=%llu missed=%llu "
        "latency-ewma=%.1fus\n",
        runtime::HealthWatchdog::ModeName(dog->mode()),
        static_cast<unsigned long long>(dog->transitions()),
        static_cast<unsigned long long>(dog->probes_sent()),
        static_cast<unsigned long long>(dog->probes_missed()),
        dog->latency_ewma_us());
  }
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    PrintUsage(stdout);
    return 0;
  }
  const std::string name = argv[1];
  std::string out_dir = ".";
  bool print = false;
  bool resources = false;
  int run_packets = 0;
  int workers = 0;
  int burst = 0;
  uint64_t flow_capacity = 0;
  uint64_t chaos_seed = 0;
  bool chaos = false;
  std::string fault_spec;
  runtime::SyncQueueOptions sync_queue;
  bool watchdog = false;
  bool campaign = false;
  std::string mutate_class;
  std::string metrics_out;
  std::string trace_out;
  std::string flight_dump;
  int metrics_every = 0;
  core::CompileOptions options;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      out_dir = v;
    } else if (arg == "--pipeline-depth") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.constraints.pipeline_depth = std::atoi(v);
    } else if (arg == "--metadata-bytes") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.constraints.metadata_bytes = std::atoi(v);
    } else if (arg == "--transfer-bytes") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.constraints.transfer_bytes = std::atoi(v);
    } else if (arg == "--memory-mb") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.constraints.memory_bytes = 1024ull * 1024 * std::atoi(v);
    } else if (arg == "--objective") {
      const char* v = next();
      if (v == nullptr) return Usage();
      if (std::strcmp(v, "weighted") == 0) {
        options.constraints.objective =
            partition::OffloadObjective::kWeightedCycles;
      } else if (std::strcmp(v, "count") != 0) {
        return Usage();
      }
    } else if (arg == "--optimize") {
      options.optimize = true;
    } else if (arg == "--print") {
      print = true;
    } else if (arg == "--resources") {
      resources = true;
    } else if (arg == "--run") {
      const char* v = next();
      if (v == nullptr) return Usage();
      run_packets = std::atoi(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage();
      workers = std::atoi(v);
      if (workers < 1) return Usage();
    } else if (arg == "--burst") {
      const char* v = next();
      if (v == nullptr) return Usage();
      burst = std::atoi(v);
      if (burst < 1) return Usage();
    } else if (arg == "--flow-capacity") {
      const char* v = next();
      if (v == nullptr) return Usage();
      flow_capacity = std::strtoull(v, nullptr, 10);
      if (flow_capacity == 0) return Usage();
    } else if (arg == "--chaos-seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      chaos_seed = std::strtoull(v, nullptr, 10);
      chaos = true;
    } else if (arg == "--fault-plan") {
      const char* v = next();
      if (v == nullptr) return Usage();
      fault_spec = v;
    } else if (arg == "--sync-queue") {
      const char* v = next();
      if (v == nullptr) return Usage();
      sync_queue.max_backlog_batches = std::strtoull(v, nullptr, 10);
    } else if (arg == "--pump-interval") {
      const char* v = next();
      if (v == nullptr) return Usage();
      sync_queue.pump_interval_packets = std::strtoull(v, nullptr, 10);
      if (sync_queue.pump_interval_packets == 0) return Usage();
    } else if (arg == "--shed") {
      sync_queue.overflow =
          runtime::SyncQueueOptions::OverflowPolicy::kShedIngress;
    } else if (arg == "--watchdog") {
      watchdog = true;
    } else if (arg == "--verify") {
      options.verify = true;
    } else if (arg == "--campaign") {
      options.verify = true;  // the campaign implies the baseline gate
      campaign = true;
    } else if (arg == "--mutate") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.verify = true;
      mutate_class = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      metrics_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      trace_out = v;
    } else if (arg == "--flight-dump") {
      const char* v = next();
      if (v == nullptr) return Usage();
      flight_dump = v;
    } else if (arg == "--metrics-every") {
      const char* v = next();
      if (v == nullptr) return Usage();
      metrics_every = std::atoi(v);
      if (metrics_every < 1) return Usage();
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      return Usage();
    }
  }
  if (!mutate_class.empty()) {
    bool known = false;
    for (int c = 0; c < verify::kNumMutationClasses; ++c) {
      if (mutate_class ==
          verify::MutationClassName(static_cast<verify::MutationClass>(c))) {
        known = true;
      }
    }
    if (!known) {
      std::fprintf(stderr, "galliumc: unknown mutation class '%s'\n",
                   mutate_class.c_str());
      return Usage();
    }
  }

  auto spec = BuildByName(name);
  if (!spec.ok()) {
    std::fprintf(stderr, "galliumc: %s\n", spec.status().ToString().c_str());
    return 1;
  }

  core::Compiler compiler(options);
  core::CompileDiagnostic diag;
  auto result = compiler.Compile(*spec->fn, &diag);
  if (!result.ok()) {
    std::fprintf(stderr, "galliumc: compilation failed: %s\n",
                 result.status().ToString().c_str());
    // Resource infeasibility and verification failures get dedicated exit
    // codes (3 resp. 4) plus a machine-readable diagnostic naming the
    // table/stage/resource or the individual findings, so CI and tooling
    // can react without scraping prose.
    if (diag.phase == "partition" || diag.phase == "placement" ||
        diag.phase == "verification") {
      std::fprintf(stderr, "%s\n", diag.ToJson().c_str());
    }
    return diag.exit_code;
  }

  // One registry per invocation: the compile-phase timings land next to
  // whatever counters the --run runtime publishes, so --metrics-out is a
  // single scrape of everything this run did.
  telemetry::MetricsRegistry registry;
  telemetry::Tracer tracer;
  for (const auto& [phase, us] : result->phase_times_us) {
    registry
        .GetGauge("galliumc_compile_phase_us",
                  {{"mbox", spec->name}, {"phase", phase}},
                  "wall-clock compile time per phase")
        ->Set(us);
  }
  registry
      .GetGauge("galliumc_compile_total_us", {{"mbox", spec->name}},
                "wall-clock compile time, all phases")
      ->Set(result->total_compile_us);

  const std::string base = out_dir + "/" + spec->name;
  // The server artifact is materialized with its support headers so the
  // output directory compiles standalone (g++ -I <out> <name>_server.cc).
  auto artifact = cppgen::MaterializeServerArtifact(out_dir, spec->name,
                                                    result->server_source);
  if (!artifact.ok()) {
    std::fprintf(stderr, "galliumc: %s\n",
                 artifact.status().ToString().c_str());
    return 1;
  }
  if (!WriteFile(base + ".p4", result->p4_source) ||
      !WriteFile(base + "_input.cc", result->click_source) ||
      !WriteFile(base + "_plan.txt",
                 result->plan.Summary(*spec->fn) + "\n" +
                     ir::PrintFunction(*spec->fn))) {
    return 1;
  }

  std::printf("galliumc: %s\n", spec->description.c_str());
  std::printf("  input: %4d LoC  ->  P4: %4d LoC, server C++: %4d LoC\n",
              result->input_loc, result->p4_loc, result->server_loc);
  std::printf("  statements: pre=%d  non-offloaded=%d  post=%d\n",
              result->plan.num_pre, result->plan.num_non_offloaded,
              result->plan.num_post);
  std::printf("  transfer: ->server %dB, ->switch %dB; metadata peak %dB\n",
              result->plan.to_server.Bytes(*spec->fn),
              result->plan.to_switch.Bytes(*spec->fn),
              result->plan.metadata_peak_bytes);
  std::printf("  wrote %s.p4 %s_server.cc %s_input.cc %s_plan.txt\n",
              base.c_str(), base.c_str(), base.c_str(), base.c_str());
  if (!result->spilled_state.empty()) {
    std::printf("  spilled to server after %d partition rounds:",
                result->partition_rounds);
    for (const auto& ref : result->spilled_state) {
      std::printf(" %s", spec->fn->StateName(ref).c_str());
    }
    std::printf("\n");
  }
  if (resources) {
    const auto& placement = result->placement;
    std::printf("\n-- RMT placement --\n%s", placement.Summary().c_str());
    std::printf("stage map: %s\n", placement.StageMapString().c_str());
    const perf::CostModel cost;
    const int stages = placement.StagesOccupied();
    std::printf(
        "cost model: traversal %.2fus (vs %.2fus flat), fast-path latency "
        "%.1fus, switch %.0f Mpps @64B, sharing headroom %dx\n",
        cost.SwitchTraversalUs(stages), cost.switch_pipeline_us,
        perf::OffloadedFastPathLatencyUs(cost, 64, stages),
        cost.PredictedSwitchMpps(placement, 64),
        cost.SharingHeadroom(placement));
  }
  if (options.verify && result->verified) {
    std::printf("  verification: %s\n",
                result->validation.Summary().c_str());
    for (const auto& f : result->lints) {
      std::printf("  lint: %s\n", f.ToString().c_str());
    }
  }
  if (campaign || !mutate_class.empty()) {
    const auto cr = verify::RunMutationCampaign(*spec->fn, result->plan,
                                                options.verify_limits);
    bool missed = false;
    std::printf("\n-- mutation campaign --\n");
    for (const auto& c : cr.classes) {
      if (!mutate_class.empty() &&
          mutate_class != verify::MutationClassName(c.cls)) {
        continue;
      }
      std::printf("  %s: %d/%d caught, %d with concrete counterexample\n",
                  verify::MutationClassName(c.cls), c.caught, c.generated,
                  c.with_counterexample);
      if (!c.example.empty()) std::printf("    e.g. %s\n", c.example.c_str());
      if (c.caught < c.generated) missed = true;
    }
    if (missed) {
      std::fprintf(stderr,
                   "galliumc: mutation campaign missed at least one seeded "
                   "bug; the validator is not trustworthy for this plan\n");
      return 4;
    }
  }
  if (print) {
    std::printf("\n%s\n", result->p4_source.c_str());
  }
  int rc = 0;
  if (run_packets > 0) {
    std::signal(SIGUSR2, OnFlightDumpSignal);
    rc = RunTraffic(*spec, run_packets, chaos_seed, chaos, fault_spec,
                    sync_queue, watchdog, workers, burst, flow_capacity,
                    metrics_every, metrics_out, flight_dump, &registry,
                    trace_out.empty() ? nullptr : &tracer);
  }
  if (!metrics_out.empty()) {
    const bool json = metrics_out.size() >= 5 &&
                      metrics_out.rfind(".json") == metrics_out.size() - 5;
    if (!WriteMetricsFile(&registry, metrics_out)) {
      return 1;
    }
    std::printf("  wrote metrics (%s, %zu series) to %s\n",
                json ? "json" : "prometheus", registry.size(),
                metrics_out.c_str());
  }
  if (!flight_dump.empty() && !DumpFlightRecorder(flight_dump)) {
    return 1;
  }
  if (!trace_out.empty()) {
    // Stamp every hop with the cost model and lay the packets out
    // back-to-back on the trace clock so Perfetto shows the run as one
    // contiguous timeline (64B packets, the paper's microbenchmark size).
    const perf::CostModel cost;
    std::vector<telemetry::PacketTrace> traces = tracer.Snapshot();
    double clock_us = 0;
    for (telemetry::PacketTrace& trace : traces) {
      perf::StampTrace(cost, /*wire_bytes=*/64, &trace);
      trace.start_us = clock_us;
      clock_us += trace.total_us + 1.0;  // 1us inter-packet gap
    }
    if (!WriteFile(trace_out, telemetry::TracesToChromeJson(traces))) {
      return 1;
    }
    std::printf("  wrote %zu packet traces to %s\n", traces.size(),
                trace_out.c_str());
  }
  return rc;
}
