// galliumc — the Gallium compiler driver.
//
// Compiles one of the built-in middleboxes and writes the deployable
// artifacts:
//   <out>/<name>.p4       — the switch program (pre + post partitions)
//   <out>/<name>_server.cc — the DPDK server program (non-offloaded part)
//   <out>/<name>_input.cc  — the rendered input source (what Table 1 counts)
//   <out>/<name>_plan.txt  — partition plan, transfers, state placement
//
// Usage:
//   galliumc <middlebox> [--out DIR] [--pipeline-depth K]
//            [--metadata-bytes N] [--transfer-bytes N] [--memory-mb N]
//            [--objective count|weighted] [--optimize] [--print]
//
//   <middlebox> ∈ {minilb, nat, lb, firewall, proxy, trojan, router}
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/compiler.h"
#include "cppgen/support.h"
#include "ir/printer.h"
#include "mbox/middleboxes.h"
#include "net/headers.h"

namespace {

using namespace gallium;

Result<mbox::MiddleboxSpec> BuildByName(const std::string& name) {
  if (name == "minilb") return mbox::BuildMiniLb();
  if (name == "nat") return mbox::BuildMazuNat();
  if (name == "lb") return mbox::BuildLoadBalancer();
  if (name == "firewall") return mbox::BuildFirewall();
  if (name == "proxy") return mbox::BuildProxy();
  if (name == "trojan") return mbox::BuildTrojanDetector();
  if (name == "router") {
    // A representative routing table exercising the lpm match kind.
    std::vector<mbox::RouteEntry> routes;
    routes.push_back({0, 0, 9, 0x9});  // default route
    for (uint32_t i = 0; i < 8; ++i) {
      routes.push_back({net::MakeIpv4(10, static_cast<uint8_t>(i), 0, 0), 16,
                        i, 0x100ull + i});
    }
    return mbox::BuildIpRouter(routes);
  }
  return InvalidArgument(
      "unknown middlebox '" + name +
      "' (try: minilb nat lb firewall proxy trojan router)");
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "galliumc: cannot write %s\n", path.c_str());
    return false;
  }
  out << contents;
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: galliumc <minilb|nat|lb|firewall|proxy|trojan|router>\n"
      "                [--out DIR] [--pipeline-depth K] [--metadata-bytes N]\n"
      "                [--transfer-bytes N] [--memory-mb N]\n"
      "                [--objective count|weighted] [--optimize] [--print]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string name = argv[1];
  std::string out_dir = ".";
  bool print = false;
  core::CompileOptions options;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      out_dir = v;
    } else if (arg == "--pipeline-depth") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.constraints.pipeline_depth = std::atoi(v);
    } else if (arg == "--metadata-bytes") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.constraints.metadata_bytes = std::atoi(v);
    } else if (arg == "--transfer-bytes") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.constraints.transfer_bytes = std::atoi(v);
    } else if (arg == "--memory-mb") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.constraints.memory_bytes = 1024ull * 1024 * std::atoi(v);
    } else if (arg == "--objective") {
      const char* v = next();
      if (v == nullptr) return Usage();
      if (std::strcmp(v, "weighted") == 0) {
        options.constraints.objective =
            partition::OffloadObjective::kWeightedCycles;
      } else if (std::strcmp(v, "count") != 0) {
        return Usage();
      }
    } else if (arg == "--optimize") {
      options.optimize = true;
    } else if (arg == "--print") {
      print = true;
    } else {
      return Usage();
    }
  }

  auto spec = BuildByName(name);
  if (!spec.ok()) {
    std::fprintf(stderr, "galliumc: %s\n", spec.status().ToString().c_str());
    return 1;
  }

  core::Compiler compiler(options);
  auto result = compiler.Compile(*spec->fn);
  if (!result.ok()) {
    std::fprintf(stderr, "galliumc: compilation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const std::string base = out_dir + "/" + spec->name;
  // The server artifact is materialized with its support headers so the
  // output directory compiles standalone (g++ -I <out> <name>_server.cc).
  auto artifact = cppgen::MaterializeServerArtifact(out_dir, spec->name,
                                                    result->server_source);
  if (!artifact.ok()) {
    std::fprintf(stderr, "galliumc: %s\n",
                 artifact.status().ToString().c_str());
    return 1;
  }
  if (!WriteFile(base + ".p4", result->p4_source) ||
      !WriteFile(base + "_input.cc", result->click_source) ||
      !WriteFile(base + "_plan.txt",
                 result->plan.Summary(*spec->fn) + "\n" +
                     ir::PrintFunction(*spec->fn))) {
    return 1;
  }

  std::printf("galliumc: %s\n", spec->description.c_str());
  std::printf("  input: %4d LoC  ->  P4: %4d LoC, server C++: %4d LoC\n",
              result->input_loc, result->p4_loc, result->server_loc);
  std::printf("  statements: pre=%d  non-offloaded=%d  post=%d\n",
              result->plan.num_pre, result->plan.num_non_offloaded,
              result->plan.num_post);
  std::printf("  transfer: ->server %dB, ->switch %dB; metadata peak %dB\n",
              result->plan.to_server.Bytes(*spec->fn),
              result->plan.to_switch.Bytes(*spec->fn),
              result->plan.metadata_peak_bytes);
  std::printf("  wrote %s.p4 %s_server.cc %s_input.cc %s_plan.txt\n",
              base.c_str(), base.c_str(), base.c_str(), base.c_str());
  if (print) {
    std::printf("\n%s\n", result->p4_source.c_str());
  }
  return 0;
}
