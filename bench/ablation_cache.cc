// Ablation for the §7 table-cache extension: switch memory vs fast-path
// coverage. The L4 load balancer serves a working set of concurrent flows
// with progressively smaller switch caches; we report switch memory, the
// fast-path fraction, and evictions.
//
// Expected: the fast-path fraction stays near 1.0 while the cache covers
// the working set, then collapses once flows start evicting each other —
// the memory/performance trade-off the paper's §7 sketches.
#include <cstdio>

#include "bench_common.h"
#include "runtime/offloaded_middlebox.h"
#include "util/strings.h"
#include "workload/packet_gen.h"

int main() {
  using namespace gallium;
  const int kFlows = 512;
  const int kRounds = 20;

  std::printf(
      "Ablation (§7): switch table cache size vs fast-path coverage\n"
      "(L4 load balancer, %d concurrent flows, %d packets per flow)\n",
      kFlows, kRounds);
  bench::PrintRule(84);
  std::printf("%12s %14s %16s %12s %12s\n", "cache size", "switch mem",
              "fast-path frac", "cache misses", "evictions");
  bench::PrintRule(84);

  for (uint64_t cache : {0ull, 4096ull, 1024ull, 512ull, 256ull, 64ull,
                         16ull}) {
    auto spec = mbox::BuildLoadBalancer();
    if (!spec.ok()) return 1;
    const ir::StateIndex flows_map = spec->MapIndex("flows");
    runtime::OffloadedOptions options;
    options.serialize_wire = false;
    options.cache_entries_per_table = cache;
    auto mbx = runtime::OffloadedMiddlebox::Create(*spec, options);
    if (!mbx.ok()) {
      std::printf("%12llu  error: %s\n",
                  static_cast<unsigned long long>(cache),
                  mbx.status().ToString().c_str());
      continue;
    }

    Rng rng(4242);
    std::vector<net::FiveTuple> flows;
    for (int f = 0; f < kFlows; ++f) flows.push_back(workload::RandomFlow(rng));

    // Establish all flows, then rounds of data packets over the working set.
    for (const auto& flow : flows) {
      net::Packet syn = net::MakeTcpPacket(flow, net::kTcpSyn, 0);
      syn.set_ingress_port(mbox::kPortInternal);
      if (!(*mbx)->Process(syn).status.ok()) return 1;
    }
    for (int round = 0; round < kRounds; ++round) {
      for (const auto& flow : flows) {
        net::Packet data = net::MakeTcpPacket(flow, net::kTcpAck, 512);
        data.set_ingress_port(mbox::kPortInternal);
        if (!(*mbx)->Process(data).status.ok()) return 1;
      }
    }

    const auto resources = (*mbx)->device().Resources();
    auto* table = (*mbx)->device().table(flows_map);
    const std::string label = cache == 0 ? "full" : std::to_string(cache);
    std::printf("%12s %14s %16.4f %12llu %12llu\n", label.c_str(),
                FormatBytes(resources.memory_bytes_used).c_str(),
                (*mbx)->FastPathFraction(),
                static_cast<unsigned long long>((*mbx)->cache_miss_aborts()),
                static_cast<unsigned long long>(
                    table != nullptr ? table->evictions() : 0));
  }
  bench::PrintRule(84);
  std::printf(
      "Expected: near-full fast-path coverage while the cache holds the\n"
      "working set (>= %d entries), FIFO thrash below it; memory shrinks\n"
      "proportionally to the cache size.\n",
      kFlows);
  return 0;
}
