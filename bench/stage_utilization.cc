// Per-stage RMT utilization of the paper middleboxes on the default
// Tofino-like profile: how many physical stages each offloaded program
// occupies, which resource binds it, the stage-aware traversal latency the
// cost model derives from that, and how much headroom is left for sharing
// the pipeline with other programs (the paper's §7 multi-tenancy remark).
#include <cstdio>

#include "bench_common.h"
#include "perf/cost_model.h"
#include "perf/harness.h"
#include "rmt/feedback.h"
#include "rmt/target.h"

int main() {
  using namespace gallium;
  const partition::SwitchConstraints constraints;
  const rmt::RmtTargetModel target = rmt::DefaultTofinoProfile(constraints);
  const perf::CostModel cost;
  const int kWireBytes = 64;

  bench::RunManifest manifest("stage_utilization", 0);
  manifest.SetConfig("wire_bytes", kWireBytes);
  manifest.SetConfig("target", target.Summary());

  std::printf("RMT stage utilization on %s\n", target.Summary().c_str());
  bench::PrintRule(100);
  std::printf("%-16s %7s %7s %10s %-14s %11s %11s %9s\n", "middlebox",
              "tables", "stages", "peak util", "binding", "traverse us",
              "latency us", "headroom");
  bench::PrintRule(100);

  for (const auto& entry : bench::PaperMiddleboxes()) {
    auto spec = entry.build();
    if (!spec.ok()) {
      std::printf("%-16s  error: %s\n", entry.display_name.c_str(),
                  spec.status().ToString().c_str());
      return 1;
    }
    auto planned = rmt::PartitionAndPlace(*spec->fn, constraints, target);
    if (!planned.ok()) {
      std::printf("%-16s  error: %s\n", entry.display_name.c_str(),
                  planned.status().ToString().c_str());
      return 1;
    }
    const rmt::PlacementReport& placement = planned->placement;
    std::string binding;
    const double peak = placement.MaxStageUtilization(&binding);
    const int stages = placement.StagesOccupied();
    std::printf("%-16s %7zu %4d/%-2d %9.0f%% %-14s %11.2f %11.1f %8dx\n",
                entry.display_name.c_str(), placement.tables.size(), stages,
                target.num_stages, peak * 100.0, binding.c_str(),
                cost.SwitchTraversalUs(stages),
                perf::OffloadedFastPathLatencyUs(cost, kWireBytes, stages),
                cost.SharingHeadroom(placement));
    const telemetry::LabelSet labels = {{"mbox", entry.display_name}};
    manifest.RecordResult("bench_rmt_stages_occupied", labels,
                          static_cast<double>(stages),
                          "physical RMT stages the placement occupies");
    manifest.RecordResult("bench_rmt_peak_stage_utilization", labels, peak);
    manifest.RecordResult(
        "bench_fast_path_latency_us", labels,
        perf::OffloadedFastPathLatencyUs(cost, kWireBytes, stages),
        "stage-aware fast-path latency");
    manifest.RecordResult("bench_rmt_sharing_headroom", labels,
                          static_cast<double>(cost.SharingHeadroom(placement)));
  }
  bench::PrintRule(100);
  std::printf(
      "flat-pipeline traversal for comparison: %.2f us; fast-path latency "
      "with it: %.1f us\n",
      cost.switch_pipeline_us,
      perf::OffloadedFastPathLatencyUs(cost, kWireBytes));

  // Per-stage occupancy of the most stage-hungry program (the firewall's
  // two 128K-entry whitelists), the shape `galliumc --resources` reports.
  auto fw = mbox::BuildFirewall();
  if (!fw.ok()) return 1;
  auto planned = rmt::PartitionAndPlace(*fw->fn, constraints, target);
  if (!planned.ok()) return 1;
  std::printf("\nFirewall placement detail:\n%s",
              planned->placement.Summary().c_str());
  manifest.Write();
  return 0;
}
