// Steady-state allocation accounting for the engine hot path.
//
// Counts global operator-new calls per packet through the multi-worker
// engine once flow state is warm. The whole packet path — burst steering,
// interpreter scratch, transfer values, map lookups, slot recycling — is
// engineered to allocate nothing per steady-state data packet, and this
// bench pins that number at exactly zero for all five paper middleboxes.
// The checked-in BENCH baseline is 0.0, and the regression gate treats any
// nonzero value against a zero baseline as a failure, so a copy that became
// a fresh vector or a map rebuilt per packet shows up as a hard CI failure
// rather than an unexplained throughput loss.
//
// The measured window replays established-flow data packets only (the
// run-to-completion steady state); connection setup/teardown — which
// legitimately inserts flow state — happens in the warmup.
//
// Amortized-growth carve-out: the flat cuckoo flow tables (src/state/) may
// allocate when a table doubles its generation arrays. Growth is triggered
// by *inserts* past the load-factor threshold, never by lookups, so it can
// only happen during setup/warmup here — the measured steady-state window
// stays exactly zero. The carve-out is recorded in the manifest config so
// baseline readers know growth allocations are exempt by design, not by
// accident of the measurement window.
#include <cstdio>
#include <cstdlib>
#include <new>

namespace {
unsigned long long g_allocs = 0;
}

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#include "bench_common.h"
#include "engine/engine.h"
#include "telemetry/flight_recorder.h"
#include "workload/packet_gen.h"

int main() {
  using namespace gallium;
  const uint64_t kSeed = 99;
  const int kNumFlows = 32;
  const int kMeasuredPackets = 2048;
  const int kWorkers = 4;

  bench::RunManifest manifest("alloc_count", kSeed);
  manifest.SetConfig("measured_packets", kMeasuredPackets);
  manifest.SetConfig("workers", kWorkers);
  // Flag the amortized-growth carve-out (see header comment): flow-table
  // generation doubling may allocate on insert, and is exempt because it
  // cannot fire in the established-flow measured window.
  manifest.SetConfig("flow_table_growth_allocs_exempt", 1);
  // The flight recorder is always on (the engine wires every shard into
  // FlightRecorder::Default()), so the zero-allocs gate below covers
  // recording-enabled runs — there is no recording-off configuration to
  // hide behind. The per-packet event rate is gated alongside it: steady
  // established-flow traffic must record nothing (events fire on episodes —
  // mode changes, resizes, backpressure — not per packet).
  manifest.SetConfig("flight_recorder_enabled", 1);

  std::printf(
      "Steady-state allocations per packet (engine, %d workers, burst 32)\n",
      kWorkers);
  bench::PrintRule(60);
  std::printf("%-18s %12s %16s\n", "Middlebox", "allocs", "allocs/packet");
  bench::PrintRule(60);

  bool all_zero = true;
  for (const auto& entry : bench::PaperMiddleboxes()) {
    auto spec = entry.build();
    if (!spec.ok()) {
      std::printf("%-18s BUILD ERROR: %s\n", entry.display_name.c_str(),
                  spec.status().ToString().c_str());
      return 1;
    }
    engine::EngineOptions options;
    options.workers = kWorkers;
    options.burst = 32;
    options.runtime.rng_seed = kSeed;
    auto eng = engine::Engine::Create(*spec, options);
    if (!eng.ok()) {
      std::printf("%-18s ENGINE ERROR: %s\n", entry.display_name.c_str(),
                  eng.status().ToString().c_str());
      return 1;
    }

    // Establish kNumFlows TCP flows (SYN + first data segment, no FIN — a
    // closed flow would put later data packets back on the insert path) and
    // build the measured window from their data packets round-robin.
    Rng rng(kSeed);
    std::vector<net::Packet> warmup;
    std::vector<net::Packet> flow_data;
    for (int f = 0; f < kNumFlows; ++f) {
      const net::FiveTuple flow = workload::RandomFlow(rng);
      std::vector<net::Packet> pkts = workload::TcpFlowPackets(flow, 4096);
      for (size_t i = 0; i + 1 < pkts.size(); ++i) {  // all but the FIN
        pkts[i].set_ingress_port(mbox::kPortInternal);
        warmup.push_back(pkts[i]);
      }
      net::Packet data = pkts[1];  // first data segment
      data.set_ingress_port(mbox::kPortInternal);
      flow_data.push_back(std::move(data));
    }
    std::vector<net::Packet> measured;
    for (int i = 0; i < kMeasuredPackets; ++i) {
      measured.push_back(flow_data[i % flow_data.size()]);
    }

    // Warm-up: install all flow state, pin rewritten flows in the director,
    // and run the measured window once so every slot, table, and scratch
    // buffer has reached its steady-state capacity.
    uint64_t now_ms = 0;
    auto warm = (*eng)->Run(warmup, now_ms + 1);
    now_ms += warmup.size();
    if (warm.errors != 0) {
      std::printf("%-18s PROCESS ERROR (warmup)\n", entry.display_name.c_str());
      return 1;
    }
    (*eng)->Run(measured, now_ms + 1);
    now_ms += measured.size();

    const unsigned long long before = g_allocs;
    const uint64_t events_before =
        telemetry::FlightRecorder::Default().events_recorded();
    const engine::RunReport report = (*eng)->Run(measured, now_ms + 1);
    const unsigned long long delta = g_allocs - before;
    const uint64_t events_delta =
        telemetry::FlightRecorder::Default().events_recorded() - events_before;
    if (report.errors != 0) {
      std::printf("%-18s PROCESS ERROR\n", entry.display_name.c_str());
      return 1;
    }
    const double per_packet = static_cast<double>(delta) / kMeasuredPackets;
    if (delta != 0) all_zero = false;
    std::printf("%-18s %12llu %16.4f\n", entry.display_name.c_str(), delta,
                per_packet);
    manifest.RecordResult("bench_allocs_per_packet",
                          {{"mbox", entry.display_name}}, per_packet,
                          "global operator-new calls per steady-state packet");
    manifest.RecordResult(
        "bench_flight_events_per_packet", {{"mbox", entry.display_name}},
        static_cast<double>(events_delta) / kMeasuredPackets,
        "flight-recorder events per steady-state packet (recording on)");
  }
  bench::PrintRule(60);
  std::printf("steady-state data-packet window: %s\n",
              all_zero ? "zero-allocation" : "ALLOCATING (regression)");
  manifest.Write();
  return 0;
}
