// Steady-state allocation accounting for the runtime hot path.
//
// Counts global operator-new calls per packet through the offloaded runtime
// once flow state is warm. Table lookups and packet processing should not
// allocate per packet in the fast path; this bench pins the actual number
// so regressions (a copy that became a fresh vector, a map rebuilt per
// packet) show up as an allocs/packet jump in the checked-in BENCH baseline
// rather than as an unexplained throughput loss.
//
// The count is deterministic for a fixed seed: same trace, same state
// history, same container growth — which is what makes it CI-gateable.
#include <cstdio>
#include <cstdlib>
#include <new>

namespace {
unsigned long long g_allocs = 0;
}

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#include "bench_common.h"
#include "runtime/offloaded_middlebox.h"
#include "workload/packet_gen.h"

int main() {
  using namespace gallium;
  const uint64_t kSeed = 99;
  const int kMeasuredPackets = 2000;

  bench::RunManifest manifest("alloc_count", kSeed);
  manifest.SetConfig("measured_packets", kMeasuredPackets);

  std::printf("Steady-state allocations per packet (offloaded runtime)\n");
  bench::PrintRule(60);
  std::printf("%-18s %12s %16s\n", "Middlebox", "allocs", "allocs/packet");
  bench::PrintRule(60);

  for (const auto& entry : bench::PaperMiddleboxes()) {
    auto spec = entry.build();
    if (!spec.ok()) {
      std::printf("%-18s BUILD ERROR: %s\n", entry.display_name.c_str(),
                  spec.status().ToString().c_str());
      return 1;
    }
    auto mbx = runtime::OffloadedMiddlebox::Create(*spec);
    if (!mbx.ok()) {
      std::printf("%-18s RUNTIME ERROR: %s\n", entry.display_name.c_str(),
                  mbx.status().ToString().c_str());
      return 1;
    }

    Rng rng(kSeed);
    workload::TraceOptions trace_options;
    trace_options.num_flows = 32;
    trace_options.ingress_port = mbox::kPortInternal;
    const workload::Trace trace = workload::MakeTrace(rng, trace_options);
    if (trace.packets.empty()) {
      std::printf("%-18s EMPTY TRACE\n", entry.display_name.c_str());
      return 1;
    }

    // Warm-up pass: install all flow state so the measured window sees the
    // steady state, not the one-time insert cost.
    uint64_t now_ms = 0;
    for (const net::Packet& pkt : trace.packets) {
      if (!(*mbx)->Process(pkt, ++now_ms).status.ok()) {
        std::printf("%-18s PROCESS ERROR (warmup)\n",
                    entry.display_name.c_str());
        return 1;
      }
    }

    const unsigned long long before = g_allocs;
    for (int i = 0; i < kMeasuredPackets; ++i) {
      const net::Packet& pkt = trace.packets[i % trace.packets.size()];
      if (!(*mbx)->Process(pkt, ++now_ms).status.ok()) {
        std::printf("%-18s PROCESS ERROR\n", entry.display_name.c_str());
        return 1;
      }
    }
    const unsigned long long delta = g_allocs - before;
    const double per_packet = static_cast<double>(delta) / kMeasuredPackets;
    std::printf("%-18s %12llu %16.2f\n", entry.display_name.c_str(), delta,
                per_packet);
    manifest.RecordResult("bench_allocs_per_packet",
                          {{"mbox", entry.display_name}}, per_packet,
                          "global operator-new calls per steady-state packet");
  }
  bench::PrintRule(60);
  manifest.Write();
  return 0;
}
