// Figure 8: throughput on the realistic enterprise and data-mining
// workloads (CONGA-style flow-size distributions, 100000 flows, 100
// concurrent sender threads), Offloaded vs Click-{1,2,4} cores.
//
// Per-packet facts (ops per packet, fast-path fraction, sync latency) come
// from the packet-level runtime; the 100k-flow run uses the fluid
// processor-sharing simulator.
//
// Paper shape: Offloaded(1c) beats Click-4c by 1-35% (enterprise) and
// 18-46% (data mining) — the data-mining gap is larger because its long
// flows are longer.
#include <cstdio>

#include "bench_common.h"
#include "perf/harness.h"
#include "sim/fluid.h"
#include "workload/flow_dist.h"

namespace {

gallium::sim::FluidConfig BaseConfig() {
  gallium::sim::FluidConfig config;
  config.line_gbps = 100.0;
  config.per_flow_gbps = 18.0;  // single-connection ceiling
  config.num_threads = 100;
  config.avg_packet_bytes = 1500.0;
  // Endhost connection-handling cost between consecutive flows of a sender
  // thread (accept/close syscalls, socket teardown): limits flow churn.
  config.teardown_us = 35.0;
  return config;
}

}  // namespace

int main() {
  using namespace gallium;
  const perf::CostModel cost;
  Rng rng(2718);
  const int kFlows = 100000;

  std::printf(
      "Figure 8: realistic workload throughput (Gbps), %d flows, 100 "
      "threads\n",
      kFlows);
  bench::PrintRule(88);
  std::printf("%-16s %-12s %10s %10s %10s %10s\n", "Middlebox", "Workload",
              "Offloaded", "Click-4c", "Click-2c", "Click-1c");
  bench::PrintRule(88);

  for (const auto& entry : bench::PaperMiddleboxes()) {
    auto profile = perf::ProfileMiddlebox(entry.build, /*num_flows=*/20);
    if (!profile.ok()) {
      std::printf("%-16s PROFILE ERROR: %s\n", entry.display_name.c_str(),
                  profile.status().ToString().c_str());
      continue;
    }
    const double click_cycles =
        cost.PacketCycles(profile->baseline_stats, 1500, 0);

    for (auto workload : {workload::WorkloadKind::kEnterprise,
                          workload::WorkloadKind::kDataMining}) {
      Rng draw_rng(workload == workload::WorkloadKind::kEnterprise ? 11 : 13);
      const auto sizes = workload::DrawFlowSizes(workload, kFlows, draw_rng);

      std::printf("%-16s %-12s", entry.display_name.c_str(),
                  workload::WorkloadName(workload));

      // Offloaded: data packets bypass the server; flow setup pays the
      // slow-path round plus state synchronization.
      {
        sim::FluidConfig config = BaseConfig();
        config.server_data_pps = 0;
        config.rtt_us = 32.0;  // 2x the offloaded one-way latency
        const double slow_us = cost.PacketServerUs(
            profile->server_slow_stats, 150, 0);
        config.setup_us_mean =
            2 * cost.nic_latency_us + slow_us +
            profile->sync_per_slow_packet * profile->mean_sync_latency_us;
        config.setup_us_jitter = 0.15 * config.setup_us_mean;
        auto result = sim::RunFluid(sizes, config, rng);
        std::printf(" %10.1f", result.throughput_gbps);
      }
      // FastClick on 1/2/4 cores: every data packet consumes server cycles.
      for (int cores : {4, 2, 1}) {
        sim::FluidConfig config = BaseConfig();
        config.server_data_pps = cores * cost.CorePps(click_cycles);
        config.setup_us_mean = 2 * cost.nic_latency_us +
                               cost.PacketServerUs(profile->baseline_stats,
                                                   150, 0);
        config.setup_us_jitter = 3.0;
        auto result = sim::RunFluid(sizes, config, rng);
        std::printf(" %10.1f", result.throughput_gbps);
      }
      std::printf("\n");
    }
  }
  bench::PrintRule(88);
  std::printf(
      "Paper shape: Offloaded(1c) > Click-4c by 1-35%% (enterprise) and\n"
      "18-46%% (data mining); the data-mining gap is larger because its\n"
      "long flows are longer.\n");
  return 0;
}
