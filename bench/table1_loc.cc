// Table 1: lines of code before and after Gallium compiles the five
// Click-based middleboxes — input (Click/C++), output P4, output C++ —
// plus the statement-level offloading breakdown behind them.
//
// Note on absolute numbers: the paper's inputs are full Click element
// graphs (1687/1447/1151/953/882 LoC including element wiring and
// configuration); our frontend renders the packet-processing logic only, so
// input counts are smaller. The reproduction target is the qualitative
// result: every middlebox splits into a deployable P4 program plus a small
// server program, with the bulk of per-packet statements offloaded.
#include <cstdio>

#include "bench_common.h"
#include "core/compiler.h"

int main() {
  using namespace gallium;

  std::printf("Table 1: Lines of code before and after Gallium compilation\n");
  bench::PrintRule();
  std::printf("%-16s %10s %10s %10s   %s\n", "Middlebox", "Input(C++)",
              "Out(P4)", "Out(C++)", "stmts pre/server/post");
  bench::PrintRule();

  core::Compiler compiler;
  for (const auto& entry : bench::PaperMiddleboxes()) {
    auto spec = entry.build();
    if (!spec.ok()) {
      std::printf("%-16s  BUILD ERROR: %s\n", entry.display_name.c_str(),
                  spec.status().ToString().c_str());
      continue;
    }
    auto result = compiler.Compile(*spec->fn);
    if (!result.ok()) {
      std::printf("%-16s  COMPILE ERROR: %s\n", entry.display_name.c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-16s %10d %10d %10d   %d/%d/%d\n",
                entry.display_name.c_str(), result->input_loc,
                result->p4_loc, result->server_loc, result->plan.num_pre,
                result->plan.num_non_offloaded, result->plan.num_post);
  }
  bench::PrintRule();
  std::printf(
      "Paper (Table 1): MazuNAT 1687/516/579, LB 1447/522/602, Firewall\n"
      "1151/506/403, Proxy 953/292/279, Trojan 882/571/418. Shape target:\n"
      "P4 output in the hundreds of lines, server C++ smaller than input,\n"
      "all five split successfully.\n");
  return 0;
}
