// Google-benchmark microbenchmarks of the Gallium implementation itself:
// compiler passes (dependency extraction, partitioning, code generation),
// the interpreter's packet-processing rate, switch table lookups with and
// without an active write-back shadow, and control-plane batch application.
//
// These are engineering benchmarks (is the compiler fast enough to be
// usable, is the simulator fast enough to drive the evaluation), not paper
// reproductions.
#include <benchmark/benchmark.h>

#include "analysis/depgraph.h"
#include "core/compiler.h"
#include "mbox/middleboxes.h"
#include "partition/partitioner.h"
#include "runtime/offloaded_middlebox.h"
#include "runtime/software_middlebox.h"
#include "switchsim/table.h"
#include "frontend/middlebox_builder.h"
#include "workload/packet_gen.h"

namespace {

using namespace gallium;

const mbox::MiddleboxSpec& NatSpec() {
  static mbox::MiddleboxSpec spec = [] {
    auto result = mbox::BuildMazuNat();
    return std::move(result).value();
  }();
  return spec;
}

void BM_DependencyExtraction(benchmark::State& state) {
  const ir::Function& fn = *NatSpec().fn;
  for (auto _ : state) {
    analysis::CfgInfo cfg(fn);
    analysis::DependencyGraph deps(fn, cfg);
    benchmark::DoNotOptimize(deps.edges().size());
  }
}
BENCHMARK(BM_DependencyExtraction);

void BM_Partition(benchmark::State& state) {
  const ir::Function& fn = *NatSpec().fn;
  for (auto _ : state) {
    partition::Partitioner partitioner(fn, {});
    auto plan = partitioner.Run();
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_Partition);

void BM_FullCompile(benchmark::State& state) {
  const ir::Function& fn = *NatSpec().fn;
  core::Compiler compiler;
  for (auto _ : state) {
    auto result = compiler.Compile(fn);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_FullCompile);

void BM_SoftwareMiddleboxPacket(benchmark::State& state) {
  auto spec = mbox::BuildMazuNat();
  runtime::SoftwareMiddlebox mbx(*spec);
  Rng rng(5);
  const net::FiveTuple flow = workload::RandomFlow(rng);
  net::Packet pkt = net::MakeTcpPacket(flow, net::kTcpAck, 512);
  pkt.set_ingress_port(mbox::kPortInternal);
  for (auto _ : state) {
    net::Packet p = pkt;
    auto outcome = mbx.Process(p);
    benchmark::DoNotOptimize(outcome.verdict.kind);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoftwareMiddleboxPacket);

void BM_OffloadedFastPathPacket(benchmark::State& state) {
  auto spec = mbox::BuildMazuNat();
  runtime::OffloadedOptions options;
  options.serialize_wire = false;
  auto mbx = runtime::OffloadedMiddlebox::Create(*spec, options);
  Rng rng(5);
  const net::FiveTuple flow = workload::RandomFlow(rng);
  // Establish the mapping so the benchmark loop rides the fast path.
  net::Packet syn = net::MakeTcpPacket(flow, net::kTcpSyn, 0);
  syn.set_ingress_port(mbox::kPortInternal);
  (void)(*mbx)->Process(syn);
  net::Packet pkt = net::MakeTcpPacket(flow, net::kTcpAck, 512);
  pkt.set_ingress_port(mbox::kPortInternal);
  for (auto _ : state) {
    auto outcome = (*mbx)->Process(pkt);
    benchmark::DoNotOptimize(outcome.fast_path);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OffloadedFastPathPacket);

void BM_TableLookup(benchmark::State& state) {
  switchsim::ExactMatchTable table("bench", 2, 1, 1 << 20);
  Rng rng(17);
  for (int i = 0; i < 100000; ++i) {
    (void)table.InsertMain({rng.NextU64() % 50000, rng.NextU64() % 50000},
                           {static_cast<uint64_t>(i)});
  }
  const bool use_wb = state.range(0) != 0;
  if (use_wb) {
    for (int i = 0; i < 100; ++i) {
      (void)table.Stage({static_cast<uint64_t>(i), 1},
                        switchsim::TableValue{7});
    }
    table.SetUseWriteBack(true);
  }
  uint64_t k = 0;
  switchsim::TableValue value;
  for (auto _ : state) {
    const bool hit = table.Lookup({k % 50000, (k * 7) % 50000}, &value);
    benchmark::DoNotOptimize(hit);
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableLookup)->Arg(0)->Arg(1)->ArgName("write_back");

void BM_ControlPlaneBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  switchsim::ExactMatchTable table("sync", 1, 1, 1 << 20);
  uint64_t next_key = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      (void)table.Stage({next_key++}, switchsim::TableValue{1});
    }
    table.SetUseWriteBack(true);
    (void)table.ApplyStagedToMain();
    table.SetUseWriteBack(false);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ControlPlaneBatch)->Arg(1)->Arg(16)->Arg(256)->ArgName("batch");


// Compiler scaling: partition time as the input program grows (the
// dependency closure is O(n^2)-O(n^3); this tracks whether real-world
// program sizes stay comfortably interactive).
void BM_PartitionScaling(benchmark::State& state) {
  const int chain_length = static_cast<int>(state.range(0));
  frontend::MiddleboxBuilder mb("scaling");
  auto map = mb.DeclareMap("m", {ir::Width::kU32}, {ir::Width::kU32}, 4096);
  auto& b = mb.b();
  ir::Reg v = b.HeaderRead(ir::HeaderField::kIpSrc, "v");
  for (int i = 0; i < chain_length; ++i) {
    v = b.Alu(i % 7 == 6 ? ir::AluOp::kMod : ir::AluOp::kAdd, ir::R(v),
              ir::Imm(i + 1), ir::Width::kU32, "v" + std::to_string(i));
    if (i % 16 == 15) {
      const auto lk = map.Find({ir::R(v)});
      v = lk.values[0];
    }
  }
  b.HeaderWrite(ir::HeaderField::kIpDst, ir::R(v));
  b.Send(ir::Imm(1));
  auto fn = std::move(mb).Finish();
  if (!fn.ok()) {
    state.SkipWithError("program generation failed");
    return;
  }
  for (auto _ : state) {
    partition::Partitioner partitioner(**fn, {});
    auto plan = partitioner.Run();
    benchmark::DoNotOptimize(plan.ok());
  }
  state.SetComplexityN(chain_length);
}
BENCHMARK(BM_PartitionScaling)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
