// Flow-table scale bench: the flat cuckoo table (src/state/) against the
// std::map<StateKey, StateValue> it replaced, at paper scale.
//
// Gallium's host runtime keys every per-flow map by five-tuple; a CONGA-era
// datacenter load balancer tracks 10M+ concurrent flows. This bench holds
// the table library to that bar:
//
//   * insert / lookup / erase / expiry throughput (Mops) at 1M and 10M
//     flows, flat table vs the ordered-map baseline;
//   * lookup+insert speedup over std::map — gated >= 5x at 10M entries
//     (bench_flow_speedup_x, pinned acceptance floor, not a measured
//     machine number);
//   * peak concurrent flows actually held (bench_flow_peak_flows, gated at
//     10M) and the p99 lookup probe length in slots
//     (bench_flow_p99_probe_slots, gated structurally: 2 buckets x 4 slots
//     = 8 once a drain has settled);
//   * worst-case single-insert pause, measured per-op on a cold table that
//     grows through every incremental resize on the way up — the number
//     that would be tens of milliseconds if a grow were stop-the-world
//     (informational: wall-clock, machine-dependent);
//   * a churn section driven by workload/churn: SYN-flood style traffic
//     replayed as table ops (lookup; miss -> insert; budgeted expiry sweep
//     every 4096 packets), the access pattern the sync path sees under
//     attack.
//
// Flags: --flows N (top scale, default 10M; also runs N/10), --churn-packets
// N, --skip-baseline (flat-only; omits the gated speedup series — CI runs
// the full default).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "state/flow_table.h"
#include "util/rng.h"
#include "workload/churn.h"

namespace {

using gallium::Rng;
using gallium::state::FlowTable;
using Clock = std::chrono::steady_clock;

constexpr size_t kKeyWords = 5;  // five-tuple, one word per field
constexpr size_t kValueWords = 2;  // {backend/state word, created_ms}

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double Mops(uint64_t ops, double seconds) {
  return seconds <= 0 ? 0 : static_cast<double>(ops) / seconds / 1e6;
}

// Distinct deterministic keys: word 0 carries the index (uniqueness), the
// rest is pseudo-random five-tuple filler. Pregenerated into one flat
// buffer so keygen cost stays out of every timed loop.
std::vector<uint64_t> MakeKeys(uint64_t flows) {
  Rng rng(flows * 0x9e3779b97f4a7c15ull + 1);
  std::vector<uint64_t> keys(flows * kKeyWords);
  for (uint64_t i = 0; i < flows; ++i) {
    keys[i * kKeyWords] = i;
    for (size_t w = 1; w < kKeyWords; ++w) {
      keys[i * kKeyWords + w] = rng.NextU64();
    }
  }
  return keys;
}

struct ScaleReport {
  uint64_t flows = 0;
  double insert_mops = 0;
  double lookup_mops = 0;
  double erase_mops = 0;
  double expiry_mops = 0;
  double max_insert_pause_us = 0;
  double p99_probe_slots = 0;
  uint64_t peak_flows = 0;
  uint64_t resizes = 0;
  double map_insert_mops = 0;  // 0 when baseline skipped
  double map_lookup_mops = 0;
  double speedup = 0;
};

// Random visiting order so lookups don't ride the insert-order prefetch.
std::vector<uint32_t> ShuffledIndices(uint64_t n, Rng* rng) {
  std::vector<uint32_t> order(n);
  for (uint64_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  for (uint64_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng->NextBounded(i)]);
  }
  return order;
}

ScaleReport RunScale(uint64_t flows, bool run_baseline) {
  ScaleReport report;
  report.flows = flows;
  Rng rng(flows);
  const std::vector<uint32_t> order = ShuffledIndices(flows, &rng);
  const std::vector<uint64_t> keys = MakeKeys(flows);
  const auto key_at = [&](uint64_t index) {
    return keys.data() + index * kKeyWords;
  };

  FlowTable::Config config;
  config.key_words = kKeyWords;
  config.value_words = kValueWords;
  // Cold start: the table earns 10M capacity through incremental resizes.
  config.initial_capacity = 1 << 16;
  FlowTable table(config);

  uint64_t value[kValueWords];

  // Insert (throughput pass, no per-op clocks). Half the entries get an
  // "old" creation stamp so the expiry sweep below has real work.
  auto start = Clock::now();
  for (uint64_t i = 0; i < flows; ++i) {
    value[0] = i;
    value[1] = (i & 1) ? 1000 : 2000;  // created_ms: odd = old
    table.Upsert(key_at(i), value);
  }
  report.insert_mops = Mops(flows, SecondsSince(start));
  report.peak_flows = table.size();

  // Settle any in-flight drain (overwrites migrate without changing size)
  // so the probe-length metric measures the steady state, not a parked
  // two-generation table.
  value[0] = 0;
  value[1] = 2000;
  while (table.resizing()) table.Upsert(key_at(0), value);
  report.resizes = table.stats().resizes;

  // Lookup, shuffled order.
  uint64_t checksum = 0;
  start = Clock::now();
  for (uint64_t i = 0; i < flows; ++i) {
    if (table.Lookup(key_at(order[i]), value)) checksum += value[0];
  }
  report.lookup_mops = Mops(flows, SecondsSince(start));
  if (checksum == 0 && flows > 1) {
    std::fprintf(stderr, "flowscale: lookup checksum impossibly zero\n");
    std::exit(1);
  }

  // p99 probe length over a key sample.
  {
    const uint64_t sample = std::min<uint64_t>(flows, 100000);
    std::vector<int> probes;
    probes.reserve(sample);
    for (uint64_t i = 0; i < sample; ++i) {
      probes.push_back(table.ProbeSlots(key_at(order[i])));
    }
    std::sort(probes.begin(), probes.end());
    report.p99_probe_slots = probes[(sample * 99) / 100];
  }

  // Expiry: one full sweep dropping the "old" half.
  start = Clock::now();
  const uint64_t expired = table.SweepAllExpired(
      [](const uint64_t*, const uint64_t* v) { return v[1] < 1500; },
      [](const uint64_t*, const uint64_t*) {});
  report.expiry_mops = Mops(flows, SecondsSince(start));
  if (expired != flows / 2) {
    std::fprintf(stderr, "flowscale: expected %" PRIu64 " expiries, got %" PRIu64 "\n",
                 flows / 2, expired);
    std::exit(1);
  }

  // Erase the survivors (erase attempts on the expired half are misses and
  // count toward the op rate — that is what churny teardown looks like).
  start = Clock::now();
  for (uint64_t i = 0; i < flows; ++i) {
    table.Erase(key_at(order[i]));
  }
  report.erase_mops = Mops(flows, SecondsSince(start));
  if (table.size() != 0) {
    std::fprintf(stderr, "flowscale: table not empty after erase pass\n");
    std::exit(1);
  }

  // Worst-case single-insert pause, on a fresh cold table so the pass rides
  // through every incremental grow up to full scale.
  {
    FlowTable::Config cold = config;
    FlowTable pause_table(cold);
    double max_pause_s = 0;
    value[1] = 2000;
    for (uint64_t i = 0; i < flows; ++i) {
      value[0] = i;
      const auto op_start = Clock::now();
      pause_table.Upsert(key_at(i), value);
      max_pause_s = std::max(max_pause_s, SecondsSince(op_start));
    }
    report.max_insert_pause_us = max_pause_s * 1e6;
  }

  if (run_baseline) {
    using MapKey = std::vector<uint64_t>;
    std::map<MapKey, std::vector<uint64_t>> baseline;
    MapKey map_key(kKeyWords);
    std::vector<uint64_t> map_value(kValueWords);
    start = Clock::now();
    for (uint64_t i = 0; i < flows; ++i) {
      std::memcpy(map_key.data(), key_at(i), kKeyWords * sizeof(uint64_t));
      map_value[0] = i;
      map_value[1] = 2000;
      baseline[map_key] = map_value;
    }
    report.map_insert_mops = Mops(flows, SecondsSince(start));
    uint64_t map_checksum = 0;
    start = Clock::now();
    for (uint64_t i = 0; i < flows; ++i) {
      std::memcpy(map_key.data(), key_at(order[i]),
                  kKeyWords * sizeof(uint64_t));
      const auto it = baseline.find(map_key);
      if (it != baseline.end()) map_checksum += it->second[0];
    }
    report.map_lookup_mops = Mops(flows, SecondsSince(start));
    if (map_checksum != checksum) {
      std::fprintf(stderr, "flowscale: baseline checksum diverged\n");
      std::exit(1);
    }
    // Combined lookup+insert rate ratio — the acceptance criterion.
    const double flat = 2.0 / (1.0 / report.insert_mops +
                               1.0 / report.lookup_mops);
    const double ordered = 2.0 / (1.0 / report.map_insert_mops +
                                  1.0 / report.map_lookup_mops);
    report.speedup = flat / ordered;
  }
  return report;
}

// Churn section: workload/churn's SYN-flood trace replayed as table ops —
// lookup every packet's five-tuple, install state on a miss, budgeted
// expiry sweep every 4096 packets.
double RunChurn(uint64_t packets, uint64_t* installed, uint64_t* swept) {
  Rng rng(20260808);
  gallium::workload::ChurnOptions options;
  options.num_packets = packets;
  options.new_flow_fraction = 0.7;
  options.established_flows = 256;
  options.burst_period = 4096;
  options.burst_len = 512;
  const gallium::workload::Trace trace =
      gallium::workload::MakeChurnTrace(rng, options);

  FlowTable::Config config;
  config.key_words = kKeyWords;
  config.value_words = kValueWords;
  FlowTable table(config);
  FlowTable::SweepCursor cursor;

  uint64_t key[kKeyWords];
  uint64_t value[kValueWords];
  uint64_t ops = 0;
  *installed = 0;
  *swept = 0;
  const auto start = Clock::now();
  for (size_t i = 0; i < trace.packets.size(); ++i) {
    const gallium::net::FiveTuple ft = trace.packets[i].five_tuple();
    key[0] = ft.saddr;
    key[1] = ft.daddr;
    key[2] = ft.sport;
    key[3] = ft.dport;
    key[4] = ft.protocol;
    if (!table.Lookup(key, value)) {
      value[0] = ft.sport;
      value[1] = i;  // created at packet index
      table.Upsert(key, value);
      ++*installed;
      ++ops;
    }
    ++ops;
    if ((i & 4095) == 4095) {
      // Age out flows idle for >64k packets, 2k slots at a time.
      *swept += table.SweepExpired(
          &cursor, 2048,
          [i](const uint64_t*, const uint64_t* v) {
            return i - v[1] > 65536;
          },
          [](const uint64_t*, const uint64_t*) {});
    }
  }
  return Mops(ops, SecondsSince(start));
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t top_flows = 10000000;
  uint64_t churn_packets = 2000000;
  bool skip_baseline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--flows" && i + 1 < argc) {
      top_flows = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--churn-packets" && i + 1 < argc) {
      churn_packets = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--skip-baseline") {
      skip_baseline = true;
    } else {
      std::fprintf(stderr,
                   "usage: flowscale [--flows N] [--churn-packets N] "
                   "[--skip-baseline]\n");
      return 2;
    }
  }

  gallium::bench::RunManifest manifest("flowscale", /*seed=*/top_flows);
  manifest.SetConfig("top_flows", static_cast<double>(top_flows));
  manifest.SetConfig("churn_packets", static_cast<double>(churn_packets));
  manifest.SetConfig("baseline", skip_baseline ? "skipped" : "std::map");
  manifest.SetConfig("key_words", static_cast<double>(kKeyWords));
  manifest.SetConfig("value_words", static_cast<double>(kValueWords));

  std::vector<uint64_t> scales;
  if (top_flows >= 10) scales.push_back(top_flows / 10);
  scales.push_back(top_flows);

  std::printf("Flat cuckoo flow table vs std::map (key=%zuw value=%zuw)\n",
              kKeyWords, kValueWords);
  gallium::bench::PrintRule(100);
  std::printf("%12s %8s %8s %8s %8s %10s %6s %9s %9s %9s\n", "flows",
              "ins", "look", "erase", "expire", "maxpause", "p99", "map-ins",
              "map-look", "speedup");
  std::printf("%12s %8s %8s %8s %8s %10s %6s %9s %9s %9s\n", "", "Mops",
              "Mops", "Mops", "Mops", "us", "slots", "Mops", "Mops", "x");
  gallium::bench::PrintRule(100);

  for (const uint64_t flows : scales) {
    const ScaleReport r = RunScale(flows, !skip_baseline);
    std::printf("%12" PRIu64 " %8.2f %8.2f %8.2f %8.2f %10.1f %6.0f %9.3f "
                "%9.3f %9.2f\n",
                r.flows, r.insert_mops, r.lookup_mops, r.erase_mops,
                r.expiry_mops, r.max_insert_pause_us, r.p99_probe_slots,
                r.map_insert_mops, r.map_lookup_mops, r.speedup);
    if (r.peak_flows != flows) {
      std::fprintf(stderr, "flowscale: held %" PRIu64 " of %" PRIu64
                   " flows\n", r.peak_flows, flows);
      return 1;
    }
    const gallium::telemetry::LabelSet scale_labels = {
        {"scale", std::to_string(flows)}};
    // Gated series (see scripts/check_bench_regression.py): the speedup and
    // peak-flow floors are the issue's acceptance criteria; the p99 probe
    // length is structural (2 buckets x 4 slots once settled).
    manifest.RecordResult("bench_flow_peak_flows", scale_labels,
                          static_cast<double>(r.peak_flows),
                          "concurrent flows held in the flat table");
    manifest.RecordResult("bench_flow_p99_probe_slots", scale_labels,
                          r.p99_probe_slots,
                          "p99 slots examined per settled lookup");
    if (!skip_baseline) {
      manifest.RecordResult(
          "bench_flow_speedup_x", scale_labels, r.speedup,
          "flat-table lookup+insert throughput over std::map");
    }
    // Informational (machine-dependent wall clock, not gated).
    manifest.RecordResult("bench_flow_insert_mops", scale_labels,
                          r.insert_mops, "flat-table insert throughput");
    manifest.RecordResult("bench_flow_lookup_mops", scale_labels,
                          r.lookup_mops, "flat-table lookup throughput");
    manifest.RecordResult("bench_flow_erase_mops", scale_labels,
                          r.erase_mops, "flat-table erase throughput");
    manifest.RecordResult("bench_flow_expiry_mops", scale_labels,
                          r.expiry_mops, "batched-aging sweep throughput");
    manifest.RecordResult("bench_flow_max_insert_pause_us", scale_labels,
                          r.max_insert_pause_us,
                          "worst single-insert pause across all resizes");
    manifest.RecordResult("bench_flow_resizes", scale_labels,
                          static_cast<double>(r.resizes),
                          "incremental grows on the way to peak");
  }
  gallium::bench::PrintRule(100);

  uint64_t installed = 0;
  uint64_t swept = 0;
  const double churn_mops = RunChurn(churn_packets, &installed, &swept);
  std::printf("churn: %" PRIu64 " packets, %" PRIu64 " installs, %" PRIu64
              " aged out, %.2f Mops\n",
              churn_packets, installed, swept, churn_mops);
  manifest.RecordResult("bench_flow_churn_mops",
                        {{"packets", std::to_string(churn_packets)}},
                        churn_mops,
                        "table op throughput replaying the SYN-flood trace");

  manifest.Write();
  return 0;
}
