// Ablation (§7's cost-model discussion): how sensitive is the offloaded
// middlebox's throughput to the fraction of packets that take the slow
// path, and to how often slow-path packets trigger state synchronization?
//
// This quantifies why Gallium's benefits depend on fast-path coverage: at
// 0.1% slow path (NAT/LB steady state) the server barely matters; as the
// slow-path share grows, the single server core becomes the bottleneck and
// the offloaded middlebox degenerates to the software baseline.
#include <cstdio>

#include "bench_common.h"
#include "perf/harness.h"

int main() {
  using namespace gallium;
  const perf::CostModel cost;

  auto profile_result =
      perf::ProfileMiddlebox([] { return mbox::BuildMazuNat(); }, 20);
  if (!profile_result.ok()) {
    std::printf("profile error: %s\n",
                profile_result.status().ToString().c_str());
    return 1;
  }
  perf::MiddleboxProfile profile = *profile_result;

  std::printf(
      "Ablation: offloaded throughput vs slow-path fraction (MazuNAT, 1500B "
      "packets)\n");
  bench::PrintRule(66);
  std::printf("%14s %16s %16s %16s\n", "slow fraction", "Offloaded Gbps",
              "Click-4c Gbps", "speedup");
  bench::PrintRule(66);
  const double click4 =
      perf::ClickThroughputGbps(cost, profile.baseline_stats, 1500, 4);
  for (double slow : {0.0, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5,
                      1.0}) {
    perf::MiddleboxProfile p = profile;
    p.fast_path_fraction = 1.0 - slow;
    const double off = perf::OffloadedThroughputGbps(cost, p, 1500);
    std::printf("%14.4f %16.1f %16.1f %15.2fx\n", slow, off, click4,
                off / click4);
  }
  bench::PrintRule(66);
  std::printf(
      "Expected: full line rate until the single server core saturates\n"
      "(slow_fraction * line_pps > core_pps, ~20%% at 1500B), then\n"
      "hyperbolic decay toward software-only performance. The paper's\n"
      "NAT/LB run at ~0.1%% slow path (§6.3), far inside the plateau —\n"
      "at 100B packets the plateau already ends near 2%%.\n");
  return 0;
}
