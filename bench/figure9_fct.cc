// Figure 9: mean flow-completion time by flow-size bin — {0-100K,
// 100K-10M, >10M bytes} — for the enterprise (E) and data-mining (D)
// workloads, FastClick (4 cores) vs Offloaded.
//
// Paper shape: the FCT reduction is concentrated on long flows, whose
// packets the switch handles without the server bottleneck.
#include <cstdio>

#include "bench_common.h"
#include "perf/harness.h"
#include "sim/fluid.h"
#include "workload/flow_dist.h"

int main() {
  using namespace gallium;
  const perf::CostModel cost;
  Rng rng(999);
  const int kFlows = 100000;

  struct Bin {
    const char* label;
    uint64_t lo, hi;
  };
  const Bin kBins[] = {{"0-100K", 0, 100000},
                       {"100K-10M", 100000, 10000000},
                       {">10M", 10000000, ~0ull}};

  std::printf("Figure 9: mean flow completion time (us) by flow size bin\n");
  bench::PrintRule(96);
  std::printf("%-16s %-6s %12s | %12s %12s %12s\n", "Middlebox", "Wkld",
              "Config", kBins[0].label, kBins[1].label, kBins[2].label);
  bench::PrintRule(96);

  for (const auto& entry : bench::PaperMiddleboxes()) {
    auto profile = perf::ProfileMiddlebox(entry.build, /*num_flows=*/20);
    if (!profile.ok()) {
      std::printf("%-16s PROFILE ERROR: %s\n", entry.display_name.c_str(),
                  profile.status().ToString().c_str());
      continue;
    }
    const double click_cycles =
        cost.PacketCycles(profile->baseline_stats, 1500, 0);

    for (auto workload : {workload::WorkloadKind::kEnterprise,
                          workload::WorkloadKind::kDataMining}) {
      Rng draw_rng(workload == workload::WorkloadKind::kEnterprise ? 11 : 13);
      const auto sizes = workload::DrawFlowSizes(workload, kFlows, draw_rng);
      const char* wkld =
          workload == workload::WorkloadKind::kEnterprise ? "E" : "D";

      sim::FluidConfig click = {};
      click.line_gbps = 100.0;
      click.per_flow_gbps = 18.0;
      click.num_threads = 100;
      click.teardown_us = 35.0;
      click.server_data_pps = 4 * cost.CorePps(click_cycles);
      click.setup_us_mean =
          2 * cost.nic_latency_us +
          cost.PacketServerUs(profile->baseline_stats, 150, 0);
      auto click_result = sim::RunFluid(sizes, click, rng);

      sim::FluidConfig off = click;
      off.server_data_pps = 0;
      off.rtt_us = 32.0;  // 2x the offloaded one-way latency
      off.setup_us_mean =
          2 * cost.nic_latency_us +
          cost.PacketServerUs(profile->server_slow_stats, 150, 0) +
          profile->sync_per_slow_packet * profile->mean_sync_latency_us;
      auto off_result = sim::RunFluid(sizes, off, rng);

      std::printf("%-16s %-6s %12s |", entry.display_name.c_str(), wkld,
                  "Click-4c");
      for (const Bin& bin : kBins) {
        std::printf(" %12.0f", sim::MeanFctUs(click_result, bin.lo, bin.hi));
      }
      std::printf("\n%-16s %-6s %12s |", "", wkld, "Offloaded");
      for (const Bin& bin : kBins) {
        std::printf(" %12.0f", sim::MeanFctUs(off_result, bin.lo, bin.hi));
      }
      std::printf("\n");
    }
  }
  bench::PrintRule(96);
  std::printf(
      "Paper shape: FCT reduction concentrated on long flows (>10M); short\n"
      "flows see comparable completion times (setup cost vs. queueing).\n");
  return 0;
}
