// Shared helpers for the evaluation harnesses in bench/.
//
// Each binary regenerates one table or figure from the paper's §6 and
// prints rows in the paper's layout. Absolute values come from the
// calibrated cost model (see EXPERIMENTS.md); the *shape* — who wins, by
// what factor, where crossovers fall — is the reproduction target.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "mbox/middleboxes.h"
#include "util/status.h"

namespace gallium::bench {

struct MiddleboxEntry {
  std::string display_name;
  std::function<Result<mbox::MiddleboxSpec>()> build;
};

inline std::vector<MiddleboxEntry> PaperMiddleboxes() {
  return {
      {"MazuNAT", [] { return mbox::BuildMazuNat(); }},
      {"Load Balancer", [] { return mbox::BuildLoadBalancer(); }},
      {"Firewall",
       [] {
         // Whitelists are populated at configuration time; give the
         // firewall a representative rule set.
         std::vector<mbox::MapInitEntry> rules;
         for (uint32_t i = 0; i < 1024; ++i) {
           rules.push_back(mbox::MapInitEntry{
               {0xc0a80000u + i, 0xac100000u + i,
                static_cast<uint64_t>(1024 + i), 80ull, 6ull},
               {1}});
         }
         return mbox::BuildFirewall(rules, rules);
       }},
      {"Proxy", [] { return mbox::BuildProxy(); }},
      {"Trojan Detector", [] { return mbox::BuildTrojanDetector(); }},
  };
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace gallium::bench
