// Shared helpers for the evaluation harnesses in bench/.
//
// Each binary regenerates one table or figure from the paper's §6 and
// prints rows in the paper's layout. Absolute values come from the
// calibrated cost model (see EXPERIMENTS.md); the *shape* — who wins, by
// what factor, where crossovers fall — is the reproduction target.
#pragma once

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "mbox/middleboxes.h"
#include "telemetry/metrics.h"
#include "util/status.h"

namespace gallium::bench {

struct MiddleboxEntry {
  std::string display_name;
  std::function<Result<mbox::MiddleboxSpec>()> build;
};

inline std::vector<MiddleboxEntry> PaperMiddleboxes() {
  return {
      {"MazuNAT", [] { return mbox::BuildMazuNat(); }},
      {"Load Balancer", [] { return mbox::BuildLoadBalancer(); }},
      {"Firewall",
       [] {
         // Whitelists are populated at configuration time; give the
         // firewall a representative rule set.
         std::vector<mbox::MapInitEntry> rules;
         for (uint32_t i = 0; i < 1024; ++i) {
           rules.push_back(mbox::MapInitEntry{
               {0xc0a80000u + i, 0xac100000u + i,
                static_cast<uint64_t>(1024 + i), 80ull, 6ull},
               {1}});
         }
         return mbox::BuildFirewall(rules, rules);
       }},
      {"Proxy", [] { return mbox::BuildProxy(); }},
      {"Trojan Detector", [] { return mbox::BuildTrojanDetector(); }},
  };
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// Machine-readable record of one bench invocation: the knobs it ran with
// (config + RNG seed) and a metrics-registry snapshot of every number it
// produced. Written as <bench>_manifest.json next to wherever the bench
// ran, so sweep scripts and CI trend checks consume the results without
// scraping the human-readable tables.
class RunManifest {
 public:
  RunManifest(std::string bench_name, uint64_t seed)
      : bench_name_(std::move(bench_name)), seed_(seed) {}

  void SetConfig(const std::string& key, const std::string& value) {
    config_.emplace_back(key,
                         "\"" + telemetry::JsonEscape(value) + "\"");
  }
  void SetConfig(const std::string& key, double value) {
    std::ostringstream out;
    out << value;
    config_.emplace_back(key, out.str());
  }

  // The registry results are recorded into; benches with their own
  // telemetry-aware plumbing can also pass it down.
  telemetry::MetricsRegistry& registry() { return registry_; }

  // Convenience: one result value as a labeled gauge.
  void RecordResult(const std::string& name, telemetry::LabelSet labels,
                    double value, const std::string& help = "") {
    registry_.GetGauge(name, std::move(labels), help)->Set(value);
  }

  std::string ToJson() const {
    std::ostringstream out;
    out << "{\"bench\":\"" << telemetry::JsonEscape(bench_name_)
        << "\",\"seed\":" << seed_ << ",\"config\":{";
    for (size_t i = 0; i < config_.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << telemetry::JsonEscape(config_[i].first)
          << "\":" << config_[i].second;
    }
    out << "},\"telemetry\":" << registry_.ToJson() << "}";
    return out.str();
  }

  // Writes <bench>_manifest.json (or `path` when given); prints where.
  bool Write(const std::string& path = "") const {
    const std::string target =
        path.empty() ? bench_name_ + "_manifest.json" : path;
    std::ofstream out(target);
    if (!out) {
      std::fprintf(stderr, "manifest: cannot write %s\n", target.c_str());
      return false;
    }
    out << ToJson() << "\n";
    std::printf("wrote run manifest: %s\n", target.c_str());
    return true;
  }

 private:
  std::string bench_name_;
  uint64_t seed_;
  // Values stored pre-rendered as JSON (quoted strings or bare numbers).
  std::vector<std::pair<std::string, std::string>> config_;
  telemetry::MetricsRegistry registry_;
};

}  // namespace gallium::bench
