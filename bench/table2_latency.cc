// Table 2: end-to-end packet latency through each middlebox — FastClick
// (every packet visits the server) vs. Gallium (established flows ride the
// switch fast path). Nptcp-style small TCP probes, mean ± stdev.
//
// Paper values: FastClick 22.4-23.2 µs, Gallium 14.8-16.0 µs (≈31% lower).
#include <cstdio>

#include "bench_common.h"
#include "perf/harness.h"

int main() {
  using namespace gallium;
  const perf::CostModel cost;
  Rng rng(77);
  const int kTrials = 20;
  const int kProbeBytes = 64 + 54;  // small Nptcp probe on the wire

  bench::RunManifest manifest("table2_latency", 77);
  manifest.SetConfig("trials", kTrials);
  manifest.SetConfig("probe_bytes", kProbeBytes);
  manifest.SetConfig("num_flows", 20);

  std::printf("Table 2: latency comparison (us, mean +- stdev, %d probes)\n",
              kTrials);
  bench::PrintRule(64);
  std::printf("%-16s %20s %20s\n", "Middlebox", "FastClick", "Gallium");
  bench::PrintRule(64);

  double sum_reduction = 0;
  int rows = 0;
  for (const auto& entry : bench::PaperMiddleboxes()) {
    auto profile = perf::ProfileMiddlebox(entry.build, /*num_flows=*/20);
    if (!profile.ok()) {
      std::printf("%-16s PROFILE ERROR: %s\n", entry.display_name.c_str(),
                  profile.status().ToString().c_str());
      continue;
    }
    const double fastclick =
        perf::FastClickLatencyUs(cost, profile->baseline_stats, kProbeBytes);
    const double gallium = perf::OffloadedFastPathLatencyUs(cost, kProbeBytes);
    auto mfc = perf::Jittered(fastclick, kTrials, 0.02, rng);
    auto mga = perf::Jittered(gallium, kTrials, 0.02, rng);
    std::printf("%-16s %12.2f +- %4.2f %12.2f +- %4.2f\n",
                entry.display_name.c_str(), mfc.mean, mfc.stdev, mga.mean,
                mga.stdev);
    for (const auto& [system, m] :
         {std::pair{"fastclick", mfc}, std::pair{"gallium", mga}}) {
      manifest.RecordResult("bench_latency_us",
                            {{"mbox", entry.display_name}, {"system", system}},
                            m.mean, "end-to-end one-way latency, mean");
      manifest.RecordResult(
          "bench_latency_stdev_us",
          {{"mbox", entry.display_name}, {"system", system}}, m.stdev);
    }
    sum_reduction += 1.0 - gallium / fastclick;
    ++rows;
  }
  bench::PrintRule(64);
  if (rows > 0) {
    std::printf("Mean latency reduction: %.0f%%  (paper: ~31%%)\n",
                100.0 * sum_reduction / rows);
  }
  std::printf(
      "Paper: FastClick 22.45-23.16 us, Gallium 14.80-15.98 us across the\n"
      "five middleboxes.\n");
  if (rows > 0) {
    manifest.RecordResult("bench_latency_reduction", {},
                          sum_reduction / rows,
                          "mean Gallium latency reduction vs FastClick");
  }
  manifest.Write();
  return 0;
}
