// Figure 7: TCP microbenchmark throughput for the five middleboxes at
// packet sizes {100, 500, 1500} bytes. Offloaded Gallium middleboxes use a
// single server core; FastClick baselines run on 1, 2 and 4 cores. Ten
// jittered trials per point give the error bars.
//
// Shape targets from the paper: Offloaded(1 core) outperforms Click-4c by
// 20-187%; the gap is largest for small packets; NAT/LB serve ~99.9% of
// packets on the switch; firewall/proxy 100%.
// The second section leaves the cost model and *measures* the multi-worker
// engine: established-flow data packets through the run-to-completion burst
// loop at 1/2/4/8 worker shards, reporting aggregate Mpps under the
// dedicated-cores model (run finishes when the busiest shard does). The
// 4-worker/1-worker scaling factor is the CI-gated number; absolute Mpps
// depends on the build machine and is informational.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "engine/engine.h"
#include "perf/harness.h"
#include "workload/packet_gen.h"

int main() {
  using namespace gallium;
  const perf::CostModel cost;
  Rng rng(1234);
  const int kTrials = 10;
  const std::vector<int> kPacketSizes = {100, 500, 1500};

  bench::RunManifest manifest("figure7_throughput", 1234);
  manifest.SetConfig("trials", kTrials);
  manifest.SetConfig("num_flows", 20);

  std::printf(
      "Figure 7: TCP microbenchmark throughput (Gbps, mean +- stdev of %d "
      "trials)\n",
      kTrials);
  bench::PrintRule(92);
  std::printf("%-16s %6s %18s %18s %18s %18s\n", "Middlebox", "Size",
              "Offloaded", "Click-4c", "Click-2c", "Click-1c");
  bench::PrintRule(92);

  for (const auto& entry : bench::PaperMiddleboxes()) {
    auto profile = perf::ProfileMiddlebox(entry.build, /*num_flows=*/20);
    if (!profile.ok()) {
      std::printf("%-16s PROFILE ERROR: %s\n", entry.display_name.c_str(),
                  profile.status().ToString().c_str());
      continue;
    }
    for (int size : kPacketSizes) {
      const double off =
          perf::OffloadedThroughputGbps(cost, *profile, size);
      auto moff = perf::Jittered(off, kTrials, 0.015, rng);
      std::printf("%-16s %6d %9.1f +- %5.1f", entry.display_name.c_str(),
                  size, moff.mean, moff.stdev);
      manifest.RecordResult("bench_throughput_gbps",
                            {{"mbox", entry.display_name},
                             {"system", "offloaded"},
                             {"packet_bytes", std::to_string(size)}},
                            moff.mean, "TCP microbenchmark throughput, mean");
      for (int cores : {4, 2, 1}) {
        const double click = perf::ClickThroughputGbps(
            cost, profile->baseline_stats, size, cores);
        auto mclick = perf::Jittered(click, kTrials, 0.02, rng);
        std::printf(" %9.1f +- %5.1f", mclick.mean, mclick.stdev);
        manifest.RecordResult(
            "bench_throughput_gbps",
            {{"mbox", entry.display_name},
             {"system", "click-" + std::to_string(cores) + "c"},
             {"packet_bytes", std::to_string(size)}},
            mclick.mean);
      }
      std::printf("\n");
    }
    std::printf("%-16s        fast-path fraction: %.4f\n", "",
                profile->fast_path_fraction);
    manifest.RecordResult("bench_fast_path_fraction",
                          {{"mbox", entry.display_name}},
                          profile->fast_path_fraction,
                          "share of packets served on the switch");
  }
  bench::PrintRule(92);
  std::printf(
      "Paper shape: Offloaded(1c) >= Click-4c by 20-187%%, largest gaps at\n"
      "small packet sizes; firewall and proxy never touch the server.\n");

  // --- Multi-core engine: measured aggregate throughput ---------------------
  const std::vector<int> kWorkerCounts = {1, 2, 4, 8};
  const int kEngineFlows = 256;
  const int kEnginePackets = 8192;
  const int kEngineTrials = 5;
  manifest.SetConfig("engine_flows", kEngineFlows);
  manifest.SetConfig("engine_measured_packets", kEnginePackets);
  manifest.SetConfig("engine_trials", kEngineTrials);

  std::printf(
      "\nMulti-core engine: measured aggregate Mpps "
      "(%d established flows, %d data packets, burst 32)\n",
      kEngineFlows, kEnginePackets);
  bench::PrintRule(78);
  std::printf("%-16s %10s %10s %10s %10s %12s\n", "Middlebox", "1w", "2w",
              "4w", "8w", "4w/1w");
  bench::PrintRule(78);

  for (const auto& entry : bench::PaperMiddleboxes()) {
    auto spec = entry.build();
    if (!spec.ok()) {
      std::printf("%-16s BUILD ERROR: %s\n", entry.display_name.c_str(),
                  spec.status().ToString().c_str());
      continue;
    }

    // Established-flow steady state: SYN + first data segment in warmup (no
    // FIN — a closed flow would re-enter the insert path), measured window
    // cycles the data segments.
    Rng trace_rng(777);
    std::vector<net::Packet> warmup;
    std::vector<net::Packet> flow_data;
    for (int f = 0; f < kEngineFlows; ++f) {
      const net::FiveTuple flow = workload::RandomFlow(trace_rng);
      std::vector<net::Packet> pkts = workload::TcpFlowPackets(flow, 2048);
      for (size_t i = 0; i + 1 < pkts.size(); ++i) {
        pkts[i].set_ingress_port(mbox::kPortInternal);
        warmup.push_back(pkts[i]);
      }
      net::Packet data = pkts[1];
      data.set_ingress_port(mbox::kPortInternal);
      flow_data.push_back(std::move(data));
    }
    std::vector<net::Packet> measured;
    for (int i = 0; i < kEnginePackets; ++i) {
      measured.push_back(flow_data[i % flow_data.size()]);
    }

    std::printf("%-16s", entry.display_name.c_str());
    double mpps_1w = 0, mpps_4w = 0;
    for (int workers : kWorkerCounts) {
      engine::EngineOptions options;
      options.workers = workers;
      options.burst = 32;
      auto eng = engine::Engine::Create(*spec, options);
      if (!eng.ok()) {
        std::printf(" ENGINE ERROR: %s\n", eng.status().ToString().c_str());
        break;
      }
      uint64_t now_ms = 1;
      (*eng)->Run(warmup, now_ms);
      now_ms += warmup.size();
      (*eng)->Run(measured, now_ms);  // warm the slot pool and caches
      now_ms += measured.size();
      // Best-of-N: scheduler preemption on a shared machine only ever adds
      // time, so the fastest trial is the least-perturbed estimate — the
      // standard min-time benchmarking estimator, and what makes the gated
      // scaling ratio reproducible in CI.
      double mpps = 0;
      for (int trial = 0; trial < kEngineTrials; ++trial) {
        const engine::RunReport report = (*eng)->Run(measured, now_ms);
        now_ms += measured.size();
        mpps = std::max(mpps, report.AggregateMpps());
      }
      if (workers == 1) mpps_1w = mpps;
      if (workers == 4) mpps_4w = mpps;
      std::printf(" %10.2f", mpps);
      manifest.RecordResult("bench_engine_mpps",
                            {{"mbox", entry.display_name},
                             {"workers", std::to_string(workers)}},
                            mpps,
                            "measured aggregate Mpps, dedicated-cores model");
    }
    const double scaling = mpps_1w > 0 ? mpps_4w / mpps_1w : 0;
    std::printf(" %11.2fx\n", scaling);
    manifest.RecordResult("bench_engine_scaling_x",
                          {{"mbox", entry.display_name}}, scaling,
                          "aggregate Mpps at 4 workers over 1 worker");
  }
  bench::PrintRule(78);
  std::printf(
      "Scaling target: >= 3x aggregate Mpps at 4 workers vs 1 (flow-hash\n"
      "imbalance and the shared-global broadcast bound it below 4x).\n");
  manifest.Write();
  return 0;
}
