// Figure 7: TCP microbenchmark throughput for the five middleboxes at
// packet sizes {100, 500, 1500} bytes. Offloaded Gallium middleboxes use a
// single server core; FastClick baselines run on 1, 2 and 4 cores. Ten
// jittered trials per point give the error bars.
//
// Shape targets from the paper: Offloaded(1 core) outperforms Click-4c by
// 20-187%; the gap is largest for small packets; NAT/LB serve ~99.9% of
// packets on the switch; firewall/proxy 100%.
#include <cstdio>

#include "bench_common.h"
#include "perf/harness.h"

int main() {
  using namespace gallium;
  const perf::CostModel cost;
  Rng rng(1234);
  const int kTrials = 10;
  const std::vector<int> kPacketSizes = {100, 500, 1500};

  bench::RunManifest manifest("figure7_throughput", 1234);
  manifest.SetConfig("trials", kTrials);
  manifest.SetConfig("num_flows", 20);

  std::printf(
      "Figure 7: TCP microbenchmark throughput (Gbps, mean +- stdev of %d "
      "trials)\n",
      kTrials);
  bench::PrintRule(92);
  std::printf("%-16s %6s %18s %18s %18s %18s\n", "Middlebox", "Size",
              "Offloaded", "Click-4c", "Click-2c", "Click-1c");
  bench::PrintRule(92);

  for (const auto& entry : bench::PaperMiddleboxes()) {
    auto profile = perf::ProfileMiddlebox(entry.build, /*num_flows=*/20);
    if (!profile.ok()) {
      std::printf("%-16s PROFILE ERROR: %s\n", entry.display_name.c_str(),
                  profile.status().ToString().c_str());
      continue;
    }
    for (int size : kPacketSizes) {
      const double off =
          perf::OffloadedThroughputGbps(cost, *profile, size);
      auto moff = perf::Jittered(off, kTrials, 0.015, rng);
      std::printf("%-16s %6d %9.1f +- %5.1f", entry.display_name.c_str(),
                  size, moff.mean, moff.stdev);
      manifest.RecordResult("bench_throughput_gbps",
                            {{"mbox", entry.display_name},
                             {"system", "offloaded"},
                             {"packet_bytes", std::to_string(size)}},
                            moff.mean, "TCP microbenchmark throughput, mean");
      for (int cores : {4, 2, 1}) {
        const double click = perf::ClickThroughputGbps(
            cost, profile->baseline_stats, size, cores);
        auto mclick = perf::Jittered(click, kTrials, 0.02, rng);
        std::printf(" %9.1f +- %5.1f", mclick.mean, mclick.stdev);
        manifest.RecordResult(
            "bench_throughput_gbps",
            {{"mbox", entry.display_name},
             {"system", "click-" + std::to_string(cores) + "c"},
             {"packet_bytes", std::to_string(size)}},
            mclick.mean);
      }
      std::printf("\n");
    }
    std::printf("%-16s        fast-path fraction: %.4f\n", "",
                profile->fast_path_fraction);
    manifest.RecordResult("bench_fast_path_fraction",
                          {{"mbox", entry.display_name}},
                          profile->fast_path_fraction,
                          "share of packets served on the switch");
  }
  bench::PrintRule(92);
  std::printf(
      "Paper shape: Offloaded(1c) >= Click-4c by 20-187%%, largest gaps at\n"
      "small packet sizes; firewall and proxy never touch the server.\n");
  manifest.Write();
  return 0;
}
