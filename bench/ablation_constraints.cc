// Ablation (§4.2.2): how the switch resource constraints shape the
// partition. Sweeps the pipeline depth, the per-packet metadata cap, the
// transfer-byte cap, and the switch memory budget, and reports how many
// statements stay offloaded for each middlebox.
#include <cstdio>

#include "bench_common.h"
#include "partition/partitioner.h"

namespace {

struct Counts {
  int pre = 0, server = 0, post = 0;
};

gallium::Result<Counts> CountWith(
    const gallium::mbox::MiddleboxSpec& spec,
    gallium::partition::SwitchConstraints constraints) {
  gallium::partition::Partitioner partitioner(*spec.fn, constraints);
  GALLIUM_ASSIGN_OR_RETURN(auto plan, partitioner.Run());
  return Counts{plan.num_pre, plan.num_non_offloaded, plan.num_post};
}

}  // namespace

int main() {
  using namespace gallium;

  std::printf("Ablation: offloaded statements vs switch constraints\n");

  for (const auto& entry : bench::PaperMiddleboxes()) {
    auto spec = entry.build();
    if (!spec.ok()) continue;
    std::printf("\n%s\n", entry.display_name.c_str());
    bench::PrintRule(70);
    std::printf("%-34s %8s %8s %8s\n", "constraint setting", "pre", "server",
                "post");
    bench::PrintRule(70);

    auto report = [&](const char* label,
                      partition::SwitchConstraints constraints) {
      auto counts = CountWith(*spec, constraints);
      if (!counts.ok()) {
        std::printf("%-34s  error: %s\n", label,
                    counts.status().ToString().c_str());
        return;
      }
      std::printf("%-34s %8d %8d %8d\n", label, counts->pre, counts->server,
                  counts->post);
    };

    report("defaults (k=12, meta=96B, xfer=20B)", {});

    for (int depth : {8, 4, 2, 1}) {
      partition::SwitchConstraints c;
      c.pipeline_depth = depth;
      report(("pipeline depth k=" + std::to_string(depth)).c_str(), c);
    }
    for (int meta : {32, 8}) {
      partition::SwitchConstraints c;
      c.metadata_bytes = meta;
      report(("metadata cap = " + std::to_string(meta) + "B").c_str(), c);
    }
    for (int xfer : {8, 4, 1}) {
      partition::SwitchConstraints c;
      c.transfer_bytes = xfer;
      report(("transfer cap = " + std::to_string(xfer) + "B").c_str(), c);
    }
    {
      partition::SwitchConstraints c;
      c.memory_bytes = 64 * 1024;  // 64 KiB: too small for the big tables
      report("switch memory = 64 KiB", c);
    }
  }
  std::printf(
      "\nExpected: offloading degrades gracefully — tighter constraints\n"
      "move statements to the server, never break compilation; with\n"
      "extreme settings everything lands in the non-offloaded partition\n"
      "(which trivially satisfies all constraints, §4.2.2).\n");
  return 0;
}
