// Table 3: latency of updating offloaded P4 tables from the middlebox
// server, for 1, 2 and 4 tables and each operation type (insert / modify /
// delete). Drives the actual switch control plane (write-back staging +
// bit flip + main-table apply) and reports the modeled latency.
//
// Paper values: 1 table ~135/129/131 µs, 2 tables ~270/258/263 µs,
// 4 tables ~371/363/366 µs — sub-linear beyond two tables.
#include <cstdio>
#include <cmath>
#include <vector>

#include "bench_common.h"
#include "frontend/middlebox_builder.h"
#include "partition/partitioner.h"
#include "runtime/state.h"
#include "runtime/sync_queue.h"
#include "switchsim/switch.h"

namespace {

// Builds a program with `n` switch-resident maps (lookup-only on the
// switch, inserted from the server), partitions it, and returns the switch.
struct MultiTableRig {
  std::unique_ptr<gallium::ir::Function> fn;
  gallium::partition::PartitionPlan plan;
  std::unique_ptr<gallium::switchsim::Switch> device;
};

gallium::Result<MultiTableRig> MakeRig(int num_tables) {
  using namespace gallium;
  frontend::MiddleboxBuilder mb("sync_rig_" + std::to_string(num_tables));
  std::vector<frontend::HashMapHandle> maps;
  for (int t = 0; t < num_tables; ++t) {
    maps.push_back(mb.DeclareMap("t" + std::to_string(t),
                                 {ir::Width::kU32}, {ir::Width::kU32},
                                 65536));
  }
  auto& b = mb.b();
  const ir::Reg saddr = b.HeaderRead(ir::HeaderField::kIpSrc, "saddr");
  // Each table is consulted once on the switch; misses are installed by the
  // server (forced off the switch through an unsupported op in the chain).
  const ir::Reg key = b.Alu(ir::AluOp::kMod, ir::R(saddr), ir::Imm(65536),
                            ir::Width::kU32, "key");
  for (auto& map : maps) {
    map.Insert({ir::R(key)}, {ir::R(saddr)});
  }
  b.Send(ir::Imm(1));
  GALLIUM_ASSIGN_OR_RETURN(auto fn, std::move(mb).Finish());

  MultiTableRig rig;
  rig.fn = std::move(fn);
  partition::Partitioner partitioner(*rig.fn, {});
  GALLIUM_ASSIGN_OR_RETURN(rig.plan, partitioner.Run());
  // Force every map onto the switch as replicated (reads from a companion
  // program would do this; the rig only exercises the control plane).
  for (ir::StateIndex m = 0; m < rig.fn->maps().size(); ++m) {
    rig.plan.state_placement[ir::StateRef{ir::StateRef::Kind::kMap, m}] =
        partition::StatePlacement::kReplicated;
  }
  GALLIUM_ASSIGN_OR_RETURN(
      rig.device, switchsim::Switch::Create(*rig.fn, rig.plan, {}));
  return rig;
}

struct Row {
  double mean = 0, stdev = 0;
};

Row Measure(gallium::switchsim::Switch& device, int num_tables,
            const char* op, gallium::Rng& rng, int trials) {
  using MapMut = gallium::runtime::RecordingStateBackend::MapMutation;
  double sum = 0, sum_sq = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<MapMut> mutations;
    for (int t = 0; t < num_tables; ++t) {
      MapMut m;
      m.map = static_cast<gallium::ir::StateIndex>(t);
      m.key = {static_cast<uint64_t>(trial * 16 + t)};
      if (std::string(op) == "delete") {
        m.is_erase = true;
      } else {
        m.values = {static_cast<uint64_t>(trial)};
      }
      mutations.push_back(std::move(m));
    }
    auto latency = device.ApplyAtomicUpdate(mutations, {}, &rng);
    if (!latency.ok()) {
      std::printf("sync error: %s\n", latency.status().ToString().c_str());
      return {};
    }
    sum += *latency;
    sum_sq += *latency * *latency;
  }
  Row row;
  row.mean = sum / trials;
  row.stdev = std::sqrt(std::max(0.0, sum_sq / trials - row.mean * row.mean));
  return row;
}

// One coalescing-backlog configuration measured over a churny update
// stream: `packets` single-key writes drawn from a small key pool, drained
// through a CoalescingSyncQueue every `pump_interval` packets. pump_interval
// 1 degenerates to the inline per-packet path, so the first row doubles as
// the baseline the other rows are compared against.
struct BacklogRow {
  double total_latency_us = 0;
  uint64_t batches = 0;
  uint64_t coalesced = 0;
};

BacklogRow MeasureBacklog(gallium::switchsim::Switch& device, int packets,
                          int pump_interval, gallium::Rng& rng) {
  using gallium::runtime::CoalescingSyncQueue;
  CoalescingSyncQueue queue;
  BacklogRow row;
  std::vector<CoalescingSyncQueue::MapMutation> maps;
  std::vector<CoalescingSyncQueue::GlobalMutation> globals;
  auto pump = [&]() {
    if (queue.empty()) return;
    queue.DrainInto(&maps, &globals);
    auto latency = device.ApplyAtomicUpdate(maps, globals, &rng);
    if (latency.ok()) {
      row.total_latency_us += *latency;
      ++row.batches;
    }
  };
  for (int p = 0; p < packets; ++p) {
    // 64-key pool over `packets` updates: heavy same-key rewrite traffic,
    // the regime the coalescer exists for.
    const uint64_t key = rng.NextBounded(64);
    queue.Enqueue({{0, {key}, {static_cast<uint64_t>(p)}, false}}, {});
    if ((p + 1) % pump_interval == 0) pump();
  }
  pump();
  row.coalesced = queue.coalesced_mutations();
  return row;
}

}  // namespace

int main() {
  using namespace gallium;
  Rng rng(3141);
  const int kTrials = 50;

  bench::RunManifest manifest("table3_state_sync", 3141);
  manifest.SetConfig("trials", kTrials);

  std::printf(
      "Table 3: latency of updating offloaded P4 tables from the server "
      "(us)\n");
  bench::PrintRule(76);
  std::printf("%8s %20s %20s %20s\n", "# tables", "Insert", "Modify",
              "Delete");
  bench::PrintRule(76);
  for (int tables : {1, 2, 4}) {
    auto rig = MakeRig(tables);
    if (!rig.ok()) {
      std::printf("rig error: %s\n", rig.status().ToString().c_str());
      return 1;
    }
    std::printf("%8d", tables);
    for (const char* op : {"insert", "modify", "delete"}) {
      const Row row = Measure(*rig->device, tables, op, rng, kTrials);
      std::printf("      %7.1f +- %5.1f", row.mean, row.stdev);
      const telemetry::LabelSet labels = {
          {"num_tables", std::to_string(tables)}, {"op", op}};
      manifest.RecordResult("bench_sync_latency_us", labels, row.mean,
                            "control-plane table-update latency, mean");
      manifest.RecordResult("bench_sync_latency_stdev_us", labels, row.stdev);
    }
    std::printf("\n");
  }
  bench::PrintRule(76);
  std::printf(
      "Paper: 1 table 135.2/128.6/131.3; 2 tables 270.1/258.3/262.7;\n"
      "4 tables 371.0/363.0/366.1 (sub-linear beyond two tables).\n"
      "A single update is ~5x the end-to-end latency of a software "
      "middlebox.\n");

  // Backlog coalescing: the same control plane driven through the bounded
  // sync queue. Per-packet inline sync (pump interval 1) pays one update
  // round-trip per write; larger pump intervals fold same-key rewrites into
  // one table write each, so control-plane cost per packet collapses.
  const int kChurnPackets = 512;
  std::printf(
      "\nCoalescing backlog: %d single-key writes over a 64-key pool (us)\n",
      kChurnPackets);
  bench::PrintRule(76);
  std::printf("%14s %10s %12s %14s %16s\n", "pump interval", "batches",
              "coalesced", "total (us)", "us per packet");
  bench::PrintRule(76);
  {
    auto rig = MakeRig(1);
    if (!rig.ok()) {
      std::printf("rig error: %s\n", rig.status().ToString().c_str());
      return 1;
    }
    double inline_total = 0;
    for (int interval : {1, 8, 32, 128}) {
      const BacklogRow row =
          MeasureBacklog(*rig->device, kChurnPackets, interval, rng);
      if (interval == 1) inline_total = row.total_latency_us;
      std::printf("%14d %10llu %12llu %14.1f %16.2f\n", interval,
                  static_cast<unsigned long long>(row.batches),
                  static_cast<unsigned long long>(row.coalesced),
                  row.total_latency_us,
                  row.total_latency_us / kChurnPackets);
      const telemetry::LabelSet labels = {
          {"pump_interval", std::to_string(interval)}};
      manifest.RecordResult("bench_backlog_latency_per_packet_us", labels,
                            row.total_latency_us / kChurnPackets,
                            "control-plane cost per packet through the "
                            "coalescing backlog");
      manifest.RecordResult("bench_backlog_coalesced_mutations", labels,
                            static_cast<double>(row.coalesced));
    }
    if (inline_total > 0) {
      std::printf(
          "inline sync pays %.1fus/packet; the backlog trades bounded switch "
          "staleness for that cost.\n",
          inline_total / kChurnPackets);
    }
  }
  manifest.Write();
  return 0;
}
